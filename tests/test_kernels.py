"""Unit tests for the batch kernels and the shm shard transport.

Covers the PR-8 raw-speed layer piece by piece (DESIGN.md section
14): kernel resolution and the ``REPRO_NO_NUMPY`` probe, the bulk
bit-vector primitives, the filter kernel against the reference
per-row loop on hand-checkable data, the numpy kernel's per-call
fallbacks, the dimension table's columnar snapshot cache, the batch's
per-batch join attachments, and the shared-memory column codecs.  The
whole-pipeline equivalence properties live in
tests/test_kernel_equivalence.py.
"""

from __future__ import annotations

import importlib
import pickle

import pytest

from repro import bitvec
from repro.cjoin import kernels
from repro.cjoin.batch import FactBatch
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.filter import Filter
from repro.cjoin.kernels import (
    HAS_NUMPY,
    PythonKernel,
    group_rows_by_bits,
    resolve,
)
from repro.errors import ConfigError
from repro.storage.shm import (
    attach_fact_slice,
    decode_rows,
    publish_fact_rows,
    published_fact_table,
)
from tests.conftest import make_tiny_star

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")


# ----------------------------------------------------------------------
# Kernel resolution
# ----------------------------------------------------------------------
class TestResolve:
    def test_off_returns_none(self):
        assert resolve("off") is None

    def test_python_is_the_pure_kernel(self):
        # resolve through the module: another test file's forced-reload
        # fixture rebinds the kernel classes, so the module attribute is
        # the truth and the import-time name may be a stale twin
        kernel = resolve("python")
        assert type(kernel) is kernels.PythonKernel
        assert kernel.name == "python"

    def test_auto_prefers_the_python_kernel(self):
        # 'auto' is the measured-fastest portable choice, not "numpy
        # when importable" — the accelerator is an explicit opt-in
        assert resolve("auto") is resolve("python")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="unknown kernel mode"):
            resolve("simd")

    @needs_numpy
    def test_numpy_mode_resolves_when_available(self):
        kernel = resolve("numpy")
        assert type(kernel) is kernels.NumpyKernel
        assert kernel.name == "numpy"

    def test_no_numpy_env_hides_the_accelerator(self, monkeypatch):
        """REPRO_NO_NUMPY forces the probe down the pure-Python path."""
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        importlib.reload(kernels)
        try:
            assert not kernels.HAS_NUMPY
            assert type(kernels.resolve("auto")) is kernels.PythonKernel
            with pytest.raises(ConfigError, match="requires numpy"):
                kernels.resolve("numpy")
        finally:
            monkeypatch.delenv("REPRO_NO_NUMPY")
            importlib.reload(kernels)


# ----------------------------------------------------------------------
# Bulk bit-vector primitives
# ----------------------------------------------------------------------
class TestBulkPrimitives:
    def test_bulk_and_lookup(self):
        masks = {"a": 0b011, "b": 0b110}
        vectors = [0b111, 0b101, 0b010]
        assert bitvec.bulk_and_lookup(
            vectors, ["a", "b", "a"], masks
        ) == [0b011, 0b100, 0b010]

    def test_bulk_and_lookup_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            bitvec.bulk_and_lookup([1, 2], ["a"], {"a": 1})

    def test_pack_positions_matches_or_loop(self):
        positions = [0, 3, 17, 200]
        expected = 0
        for position in positions:
            expected |= 1 << position
        assert bitvec.pack_positions(positions) == expected
        assert bitvec.pack_positions([]) == 0


# ----------------------------------------------------------------------
# Routing group discovery
# ----------------------------------------------------------------------
class TestGroupRowsByBits:
    BITVECTORS = [0b01, 0b10, 0b01, 0b11, 0b10, 0b01]

    def test_first_occurrence_order_and_scan_order(self):
        groups = group_rows_by_bits(self.BITVECTORS, [0, 1, 2, 3, 4, 5])
        assert list(groups) == [0b01, 0b10, 0b11]
        assert groups == {0b01: [0, 2, 5], 0b10: [1, 4], 0b11: [3]}

    def test_respects_live_subset(self):
        groups = group_rows_by_bits(self.BITVECTORS, [1, 3, 5])
        assert groups == {0b10: [1], 0b11: [3], 0b01: [5]}

    @needs_numpy
    def test_numpy_grouping_matches_reference(self):
        kernel = resolve("numpy")
        for live in ([0, 1, 2, 3, 4, 5], [1, 3, 5], [2], []):
            assert kernel.group_rows_by_bits(
                self.BITVECTORS, live
            ) == group_rows_by_bits(self.BITVECTORS, live)

    @needs_numpy
    def test_numpy_grouping_falls_back_on_wide_bits(self):
        bitvectors = [1 << 80, 0b1, 1 << 80]
        live = [0, 1, 2]
        assert resolve("numpy").group_rows_by_bits(
            bitvectors, live
        ) == group_rows_by_bits(bitvectors, live)


# ----------------------------------------------------------------------
# Filter kernel vs the reference per-row loop
# ----------------------------------------------------------------------
def _store_table() -> DimensionHashTable:
    """store dim with Q1 selecting lyon+paris, Q2 not referencing."""
    _, star = make_tiny_star()
    table = DimensionHashTable(star.dimension("store"))
    table.mark_query_referencing(1)
    table.register_selected_rows(1, [(1, "lyon", 100), (2, "paris", 250)])
    table.mark_query_not_referencing(2)
    return table


def _sales_batch() -> FactBatch:
    catalog, _ = make_tiny_star()
    rows = catalog.table("sales").all_rows()
    return FactBatch(
        list(range(len(rows))),
        list(range(len(rows))),
        rows,
        [0b11] * len(rows),
    )


def _apply_reference(batch: FactBatch, table: DimensionHashTable) -> Filter:
    _, star = make_tiny_star()
    reference = Filter(table, star, kernel=None)
    reference.process_batch(batch)
    return reference


@pytest.mark.parametrize("mode", ["python", "numpy"])
def test_filter_kernel_matches_reference_loop(mode):
    if mode == "numpy" and not HAS_NUMPY:
        pytest.skip("numpy unavailable")
    table = _store_table()
    _, star = make_tiny_star()
    expected = _sales_batch()
    reference = _apply_reference(expected, table)
    batch = _sales_batch()
    filtered = Filter(table, star, kernel=resolve(mode))
    filtered.process_batch(batch)
    assert batch.bitvectors == expected.bitvectors
    assert batch.live == expected.live
    assert batch.alive == expected.alive
    assert filtered.stats.probes == reference.stats.probes
    assert filtered.stats.probe_skips == reference.stats.probe_skips
    def snapshot(filtered_batch):
        return [
            (t.sequence, t.position, t.row, t.bitvector, t.dim_rows)
            for t in map(filtered_batch.materialize, filtered_batch.live)
        ]

    assert snapshot(batch) == snapshot(expected)


def test_filter_kernel_alive_mask_tracks_live_list():
    """Both compaction sides keep alive == pack(live) (mostly-dropped
    batches go through replace_live, mostly-kept through drop_rows)."""
    _, star = make_tiny_star()
    # keep-most: only store 3's sales drop
    keep_table = DimensionHashTable(star.dimension("store"))
    keep_table.mark_query_referencing(1)
    keep_table.register_selected_rows(
        1, [(1, "lyon", 100), (2, "paris", 250)]
    )
    # drop-most: only store 3's sales survive
    drop_table = DimensionHashTable(star.dimension("store"))
    drop_table.mark_query_referencing(1)
    drop_table.register_selected_rows(1, [(3, "nice", 50)])
    for table in (keep_table, drop_table):
        batch = _sales_batch()
        for row_index in range(len(batch)):
            batch.bitvectors[row_index] = 0b1
        batch.replace_live(batch.live)  # normalize through the API
        Filter(table, star, kernel=resolve("python")).process_batch(batch)
        assert batch.alive == bitvec.pack_positions(batch.live)
        assert all(batch.bitvectors[r] for r in batch.live)


def test_filter_kernel_distinct_probes_counted():
    """Dedup probing reports the deduplicated hash-table traffic."""
    table = _store_table()
    _, star = make_tiny_star()
    batch = _sales_batch()
    filtered = Filter(table, star, kernel=resolve("python"))
    filtered.process_batch(batch)
    # 12 logical probes but only 3 distinct store keys in the batch
    assert filtered.stats.probes == 12
    assert 0 < filtered.stats.distinct_probes <= 3


@needs_numpy
def test_numpy_and_pass_falls_back_on_wide_bitvectors():
    """Bit-vectors beyond 64 bits use the pure pass, same results."""
    wide = 1 << 70
    in_bits = [wide | 0b1, 0b1, wide]
    keys = ["a", "b", "a"]
    bits_by_key = {"a": wide | 0b1, "b": 0b0}
    python_out = PythonKernel()._and_pass(in_bits, keys, bits_by_key, 0, True)
    numpy_out = resolve("numpy")._and_pass(in_bits, keys, bits_by_key, 0, True)
    assert numpy_out == python_out
    assert numpy_out[0] == [wide | 0b1, 0, wide]


# ----------------------------------------------------------------------
# Columnar snapshot cache on the dimension table
# ----------------------------------------------------------------------
class TestColumnarView:
    def test_snapshot_matches_entries(self):
        table = _store_table()
        bits_by_key, rows_by_key = table.columnar_view()
        assert bits_by_key == {
            key: table.bits_for_key(key) for key in rows_by_key
        }
        assert rows_by_key == {
            key: entry.row for key, entry in table.entries_view().items()
        }

    def test_snapshot_identity_stable_between_changes(self):
        table = _store_table()
        assert table.columnar_view()[1] is table.columnar_view()[1]

    def test_registration_changes_invalidate(self):
        table = _store_table()
        before = table.columnar_view()
        table.register_selected_rows(3, [(3, "nice", 50)])
        after = table.columnar_view()
        assert after[0] is not before[0]
        assert 3 in after[1]
        table.unregister_query(3)
        rebuilt = table.columnar_view()
        assert rebuilt is not after
        # the entry survives (Q2's implicit all-rows selection holds a
        # bit on it) but the snapshot must show query 3's bit cleared
        assert rebuilt[0][3] == table.bits_for_key(3)
        assert not bitvec.test_bit(rebuilt[0][3], 3)
        table.mark_query_not_referencing(4)
        assert table.columnar_view() is not rebuilt

    def test_unregister_garbage_collects_dead_entries(self):
        _, star = make_tiny_star()
        table = DimensionHashTable(star.dimension("store"))
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(3, "nice", 50)])
        table.unregister_query(1)
        assert table.is_empty
        assert table.complement_bitmap == 0


# ----------------------------------------------------------------------
# Per-batch join attachments
# ----------------------------------------------------------------------
class TestBatchAttachments:
    def test_dim_lookup_state_requires_every_name(self):
        batch = _sales_batch()
        rows_of = {1: (1, "lyon", 100)}
        batch.attach_dim_lookup("store", 0, rows_of)
        state = batch.dim_lookup_state(("store",))
        assert state == ((0, rows_of),)
        assert batch.dim_lookup_state(("store", "product")) is None
        assert batch.dim_lookup_state(()) == ()

    def test_materialize_merges_batch_level_lookups(self):
        batch = _sales_batch()
        store_row = (1, "lyon", 100)
        batch.attach_dim_lookup("store", 0, {1: store_row})
        fact_tuple = batch.materialize(0)  # sale (1, 10, 2, 10)
        assert fact_tuple.dim_rows == {"store": store_row}
        # row 2 joins store 2, absent from the lookup: nothing attached
        assert batch.materialize(2).dim_rows is None

    def test_replace_live_rebuilds_alive_mask(self):
        batch = _sales_batch()
        batch.replace_live([1, 4, 7])
        assert batch.live == [1, 4, 7]
        assert batch.alive == bitvec.pack_positions([1, 4, 7])
        assert batch.live_count == 3


# ----------------------------------------------------------------------
# Shared-memory column codecs
# ----------------------------------------------------------------------
class TestShmTransport:
    def test_codec_selection_and_round_trip(self):
        rows = [
            (1, 2.5, "lyon", [1]),
            (-(2**40), 0.0, "paris", [2, 3]),
            (7, -1.25, "lyon", []),
        ]
        with published_fact_table(rows, 4) as layout:
            kinds = [spec.kind for spec in layout.columns]
            assert kinds == ["i64", "f64", "dict", "pickle"]
            assert attach_fact_slice(layout, 0, 3) == rows
            assert attach_fact_slice(layout, 1, 3) == rows[1:]
            assert attach_fact_slice(layout, 2, 2) == []

    def test_beyond_int64_falls_to_dictionary(self):
        rows = [(2**64,), (2**64,), (5,)]
        with published_fact_table(rows, 1) as layout:
            assert layout.columns[0].kind == "dict"
            assert attach_fact_slice(layout, 0, 3) == rows

    def test_bool_is_not_packed_as_int(self):
        # bool is an int subclass; packing True as 1 would change the
        # decoded rows, so the exact-type scan must reject it
        rows = [(True,), (False,), (True,)]
        with published_fact_table(rows, 1) as layout:
            assert layout.columns[0].kind != "i64"
            assert attach_fact_slice(layout, 0, 3) == rows

    def test_empty_table_publishes_and_decodes(self):
        with published_fact_table([], 3) as layout:
            assert layout.row_count == 0
            assert [spec.kind for spec in layout.columns] == ["dict"] * 3
            assert attach_fact_slice(layout, 0, 0) == []

    def test_out_of_bounds_slices_rejected(self):
        rows = [(1,), (2,)]
        with published_fact_table(rows, 1) as layout:
            for start, end in ((0, 3), (-1, 2), (2, 1)):
                with pytest.raises(ValueError, match="outside"):
                    decode_rows(layout, b"\x00" * 16, start, end)

    def test_segment_unlinked_after_context(self):
        rows = [(1,), (2,)]
        with published_fact_table(rows, 1) as layout:
            pass
        with pytest.raises(FileNotFoundError):
            attach_fact_slice(layout, 0, 2)

    def test_layout_descriptor_stays_small(self):
        """What crosses the pipe is the descriptor, not the rows."""
        rows = [(i, float(i), "x" if i % 2 else "y") for i in range(5000)]
        segment, layout = publish_fact_rows(rows, 3)
        try:
            descriptor = len(pickle.dumps(layout, pickle.HIGHEST_PROTOCOL))
            full_rows = len(pickle.dumps(rows, pickle.HIGHEST_PROTOCOL))
            assert descriptor * 100 < full_rows
        finally:
            segment.close()
            segment.unlink()
