"""Process-parallel sharded backend vs serial paths: result equivalence.

The parallel backend (DESIGN.md section 8) is a pure performance
decomposition: for every workload, worker count, and transport it must
produce results identical to both serial execution granularities.
These tests drive randomized SSB workloads through serial 'tuple',
serial 'batched', and the sharded backend, plus targeted cases for the
merge protocol itself: AVG/MIN/MAX partial-state merges, empty shards
(more workers than fact rows), the pickle-transport fallback for
unpicklable workloads, and the shard-span planner's invariants.

Process pools are real but small here; the in-process transport runs
the identical shard/merge protocol deterministically, so most examples
use it and a handful of cases exercise the actual pools.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cjoin import CJoinOperator, execute_process_parallel
from repro.cjoin.executor import ExecutorConfig
from repro.cjoin.parallel import merge_shard_states
from repro.errors import ConfigError, StorageError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Predicate
from repro.query.star import ColumnRef, StarQuery
from repro.ssb.queries import ssb_workload_generator
from repro.storage.partition import contiguous_spans
from tests.conftest import make_tiny_star


def _run_serial(catalog, star, queries, execution):
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(execution=execution)
    )
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    return [handle.results() for handle in handles]


# ----------------------------------------------------------------------
# Property suite: all three backends agree on random SSB workloads
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=8),
    selectivity=st.sampled_from([0.02, 0.1, 0.4]),
    workers=st.sampled_from([1, 2, 3, 7]),
    batch_size=st.sampled_from([3, 64, 512]),
)
def test_random_workloads_equivalent(
    ssb_small, seed, count, selectivity, workers, batch_size
):
    """tuple == batched == process-parallel on random workloads."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=seed, catalog=catalog).generate(
        count, selectivity=selectivity
    )
    tuple_results = _run_serial(catalog, star, queries, "tuple")
    batched_results = _run_serial(catalog, star, queries, "batched")
    parallel_results = execute_process_parallel(
        catalog,
        star,
        queries,
        workers=workers,
        batch_size=batch_size,
        transport="inprocess",
    )
    assert tuple_results == batched_results
    assert parallel_results == batched_results


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    workers=st.sampled_from([2, 5, 13, 30]),
)
def test_avg_min_max_merges(seed, workers):
    """Non-trivial mergeable states, including empty shards.

    The tiny star has 12 fact rows, so workers > 12 forces empty
    shards; AVG keeps (sum, count) pairs un-finalized, MIN/MAX must
    ignore empty partials, and the NULL-on-empty-input convention has
    to survive the merge.
    """
    catalog, star = make_tiny_star()
    query = StarQuery.build(
        "sales",
        group_by=[ColumnRef("store", "s_city")],
        aggregates=[
            AggregateSpec("avg", "sales", "f_total"),
            AggregateSpec("min", "sales", "f_qty"),
            AggregateSpec("max", "product", "p_price"),
            AggregateSpec("count"),
            AggregateSpec("count", "sales", "f_qty"),
            AggregateSpec("sum", "sales", "f_total", "f_qty", combine="-"),
        ],
        label=f"merge-case-{seed}",
    )
    global_query = StarQuery.build(
        "sales",
        aggregates=[
            AggregateSpec("avg", "sales", "f_total"),
            AggregateSpec("min", "sales", "f_total"),
            AggregateSpec("max", "sales", "f_total"),
        ],
    )
    queries = [query, global_query]
    serial = _run_serial(catalog, star, queries, "batched")
    parallel = execute_process_parallel(
        catalog, star, queries, workers=workers, transport="inprocess"
    )
    assert parallel == serial


def test_listing_queries_equivalent(ssb_small):
    """Aggregate-free (listing) operators merge by concatenation."""
    catalog, star = ssb_small
    query = StarQuery.build(
        "lineorder",
        select=[
            ColumnRef("date", "d_year"),
            ColumnRef("lineorder", "lo_quantity"),
        ],
        fact_predicate=None,
    )
    serial = _run_serial(catalog, star, [query], "batched")
    parallel = execute_process_parallel(
        catalog, star, [query], workers=4, transport="inprocess"
    )
    assert parallel == serial


def test_sort_aggregation_mode_equivalent(ssb_small, ssb_workload):
    """The sort-based operator merges shard buffers identically."""
    catalog, star = ssb_small
    queries = ssb_workload[:6]
    operator = CJoinOperator(
        catalog,
        star,
        executor_config=ExecutorConfig(execution="batched"),
        aggregation_mode="sort",
    )
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    serial = [handle.results() for handle in handles]
    parallel = execute_process_parallel(
        catalog,
        star,
        queries,
        workers=3,
        aggregation_mode="sort",
        transport="inprocess",
    )
    assert parallel == serial


# ----------------------------------------------------------------------
# Real process pools (small, to keep the suite fast)
# ----------------------------------------------------------------------
def test_fork_pool_equivalent(ssb_small, ssb_workload):
    """The fork transport (inherited memory) matches the serial drain."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("platform has no fork start method")
    catalog, star = ssb_small
    queries = ssb_workload[:6]
    serial = _run_serial(catalog, star, queries, "batched")
    parallel = execute_process_parallel(
        catalog, star, queries, workers=4, transport="fork"
    )
    assert parallel == serial


def test_pickle_pool_equivalent(ssb_small, ssb_workload):
    """The spawn transport (explicit shard tasks) matches too."""
    catalog, star = ssb_small
    queries = ssb_workload[:4]
    serial = _run_serial(catalog, star, queries, "batched")
    parallel = execute_process_parallel(
        catalog, star, queries, workers=2, transport="pickle"
    )
    assert parallel == serial


def test_shm_pool_equivalent(ssb_small, ssb_workload):
    """The shared-memory transport (DESIGN.md section 14) matches."""
    catalog, star = ssb_small
    queries = ssb_workload[:4]
    serial = _run_serial(catalog, star, queries, "batched")
    parallel = execute_process_parallel(
        catalog, star, queries, workers=2, transport="shm"
    )
    assert parallel == serial


def test_shm_publish_cache_reused_across_drains(ssb_small, ssb_workload):
    """Repeat shm drains reattach the same published segment.

    The fact table is laid out in shared memory once; the second drain
    must hit the publish cache (same segment name in the layout) and
    still produce correct results.
    """
    from repro.cjoin import parallel as parallel_module

    catalog, star = ssb_small
    queries = ssb_workload[:2]
    serial = _run_serial(catalog, star, queries, "batched")
    first = execute_process_parallel(
        catalog, star, queries, workers=2, transport="shm"
    )
    with parallel_module._SHM_LOCK:
        assert parallel_module._SHM_CACHE is not None
        first_layout = parallel_module._SHM_CACHE[3]
    second = execute_process_parallel(
        catalog, star, queries, workers=2, transport="shm"
    )
    with parallel_module._SHM_LOCK:
        assert parallel_module._SHM_CACHE[3] is first_layout
    assert first == serial
    assert second == serial


# ----------------------------------------------------------------------
# Fallback and protocol plumbing
# ----------------------------------------------------------------------
class _UnpicklablePredicate(Predicate):
    """A predicate closed over a lambda: works in-process, not in pickles."""

    def __init__(self) -> None:
        self._matcher = lambda row: True

    def bind(self, schema):
        return self._matcher

    def referenced_columns(self):
        return set()


def test_unpicklable_workload_falls_back(ssb_small):
    """Pickle-transport drains unpicklable workloads in-process."""
    catalog, star = ssb_small
    query = StarQuery.build(
        "lineorder",
        dimension_predicates={"date": _UnpicklablePredicate()},
        group_by=[ColumnRef("date", "d_year")],
        aggregates=[AggregateSpec("sum", "lineorder", "lo_revenue")],
    )
    serial = _run_serial(catalog, star, [query], "batched")
    parallel = execute_process_parallel(
        catalog, star, [query], workers=3, transport="pickle"
    )
    assert parallel == serial


def test_query_chunking_beyond_max_concurrent(ssb_small):
    """Query sets above the worker maxConc drain in full-shard passes."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=9, catalog=catalog).generate(
        7, selectivity=0.1
    )
    serial = _run_serial(catalog, star, queries, "batched")
    parallel = execute_process_parallel(
        catalog,
        star,
        queries,
        workers=2,
        max_concurrent=3,
        transport="inprocess",
    )
    assert parallel == serial


def test_merge_shard_states_orders_shards_like_the_scan(ssb_small):
    """merge_shard_states is the serial fold over shard-ordered states."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=5, catalog=catalog).generate(
        3, selectivity=0.1
    )
    serial = _run_serial(catalog, star, queries, "batched")
    from repro.cjoin.parallel import _run_inprocess

    fact_rows = catalog.table(star.fact.name).all_rows()
    dimension_tables = {
        name: catalog.table(name) for name in star.dimension_names()
    }
    spans = contiguous_spans(len(fact_rows), 4)
    shard_states = _run_inprocess(
        star, fact_rows, dimension_tables, tuple(queries), spans,
        256, "hash", 256,
    )
    assert len(shard_states) == 4
    merged = merge_shard_states(star, queries, shard_states)
    assert merged == serial


def test_empty_query_set_returns_empty():
    catalog, star = make_tiny_star()
    assert execute_process_parallel(catalog, star, [], workers=4) == []


def test_unknown_transport_rejected(ssb_small, ssb_workload):
    catalog, star = ssb_small
    with pytest.raises(ConfigError, match="unknown transport"):
        execute_process_parallel(
            catalog, star, ssb_workload[:1], workers=2, transport="osc"
        )


# ----------------------------------------------------------------------
# Shard-span planner invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    row_count=st.integers(min_value=0, max_value=5000),
    segments=st.integers(min_value=1, max_value=64),
)
def test_contiguous_spans_partition_the_scan(row_count, segments):
    """Spans are contiguous, balanced, and cover [0, row_count)."""
    spans = contiguous_spans(row_count, segments)
    assert len(spans) == segments
    assert spans[0][0] == 0
    assert spans[-1][1] == row_count
    lengths = []
    for (start, end), (next_start, _) in zip(spans, spans[1:]):
        assert end == next_start
        lengths.append(end - start)
    lengths.append(spans[-1][1] - spans[-1][0])
    assert all(length >= 0 for length in lengths)
    assert max(lengths) - min(lengths) <= 1


def test_contiguous_spans_rejects_bad_counts():
    with pytest.raises(StorageError, match="segment_count"):
        contiguous_spans(10, 0)
    with pytest.raises(StorageError, match="row_count"):
        contiguous_spans(-1, 2)
