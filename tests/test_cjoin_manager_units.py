"""Direct unit tests for PipelineManager paths not covered end-to-end."""

import pytest

from repro.cjoin import CJoinOperator
from repro.cjoin.manager import AdmissionTimings
from repro.cjoin.optimizer import DropRatePolicy
from repro.errors import AdmissionError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import StarQuery


def city_query(city):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[AggregateSpec("count")],
    )


class TestAdmissionTimings:
    def test_mean_of_empty_is_zero(self):
        assert AdmissionTimings().mean_submission_seconds == 0.0

    def test_records_accumulate(self):
        timings = AdmissionTimings()
        timings.record(1.0, 10)
        timings.record(3.0, 20)
        assert timings.mean_submission_seconds == 2.0
        assert timings.dimension_rows_loaded == [10, 20]

    def test_operator_populates_timings(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        operator.submit(city_query("lyon"))
        assert len(operator.manager.timings.submission_seconds) == 1
        assert operator.manager.timings.dimension_rows_loaded == [1]


class TestReoptimizePaths:
    def test_reoptimize_with_fewer_than_two_filters(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, ordering_policy=DropRatePolicy())
        operator.submit(city_query("lyon"))  # one dimension -> one filter
        assert operator.manager.reoptimize() is False

    def test_reoptimize_no_change_resets_windows(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, ordering_policy=DropRatePolicy())
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "store": Comparison("s_city", "=", "lyon"),
                "product": Comparison("p_category", "=", "food"),
            },
            aggregates=[AggregateSpec("count")],
        )
        operator.submit(query)
        for pipeline_filter in operator.pipeline.filters:
            pipeline_filter.stats.tuples_in = 5
        changed = operator.manager.reoptimize()
        # whatever the ordering decision, the windows were reset
        assert all(
            f.stats.tuples_in == 0 for f in operator.pipeline.filters
        ), changed

    def test_reoptimize_records_stat(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, ordering_policy=DropRatePolicy())
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "product": Comparison("p_price", ">", 0),   # weak, first
                "store": Comparison("s_city", "=", "nice"),  # strong, second
            },
            aggregates=[AggregateSpec("count")],
        )
        operator.submit(query)
        # simulate observed drop rates favouring the store filter
        operator.pipeline.filter_for("product").stats.tuples_in = 100
        operator.pipeline.filter_for("product").stats.tuples_dropped = 1
        operator.pipeline.filter_for("store").stats.tuples_in = 100
        operator.pipeline.filter_for("store").stats.tuples_dropped = 90
        assert operator.manager.reoptimize() is True
        assert operator.filter_order() == ("store", "product")
        assert operator.stats.reoptimizations == 1


class TestCleanupPaths:
    def test_cleanup_of_unknown_query_raises(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        operator.manager._finished_queue.append(99)
        with pytest.raises(AdmissionError):
            operator.manager.process_finished()

    def test_dimension_table_hook(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        operator.submit(city_query("lyon"))
        table = operator.manager.dimension_table("store")
        assert table.tuple_count == 1
