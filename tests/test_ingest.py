"""Streaming ingest: equivalence, back-pressure, close(), v1 gate.

The subsystem contract (DESIGN.md section 15, docs/PROTOCOL.md
section 10): a dataset built by streaming appends and dimension
upserts through the bounded ingest buffer must answer every query
exactly like the same dataset bulk-loaded — across the tuple,
batched, and process execution paths and over both servers — writes
beyond the buffer get typed back-pressure instead of blocking, a
clean ``Warehouse.close()`` drains or rejects every staged batch
deterministically, and a protocol-v1 peer gets a clean
``NotSupportedError`` instead of a dead connection.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

import repro
from repro.client import NotSupportedError, OperationalError, ProgrammingError
from repro.engine import Warehouse
from repro.errors import IngestBackpressureError, IngestError
from repro.query.aggregates import AggregateSpec
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.server import AsyncWarehouseServer, WarehouseServer, protocol
from tests.conftest import make_tiny_star

COUNT_SQL = "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"
CITY_SQL = (
    "SELECT s_city, SUM(f_total) AS total FROM sales, store "
    "WHERE f_store = s_id GROUP BY s_city"
)

#: the tail of conftest's 12 sales rows, streamed instead of bulk-loaded
STREAMED_SALES = [
    (2, 20, 2, 60),
    (3, 10, 4, 20),
    (1, 40, 3, 36),
    (2, 40, 1, 12),
    (3, 30, 2, 16),
    (1, 10, 1, 5),
]

SERVER_CLASSES = {
    "threaded": WarehouseServer,
    "async": AsyncWarehouseServer,
}


def make_partial_star():
    """The conftest tiny star minus the streamed tail, plus one stale
    dimension row (nice's size is wrong until an upsert corrects it)."""
    catalog, star = make_tiny_star()
    sales = catalog.table("sales")
    rebuilt = type(sales).from_rows(
        sales.schema,
        sales.all_rows()[: len(sales.all_rows()) - len(STREAMED_SALES)],
        rows_per_page=4,
    )
    partial = type(catalog)()
    partial.register_table(rebuilt)
    store = catalog.table("store")
    stale_store = type(store).from_rows(
        store.schema,
        [(1, "lyon", 100), (2, "paris", 250), (3, "nice", 999)],
        rows_per_page=4,
    )
    partial.register_table(stale_store)
    partial.register_table(catalog.table("product"))
    partial.register_star(star)
    return partial, star


def stream_the_tail(warehouse: Warehouse) -> dict:
    """Append the held-back sales rows and fix the stale store row."""
    with warehouse.writer(batch_rows=2) as writer:
        for row in STREAMED_SALES:
            writer.append(row)
        writer.upsert("store", (3, "nice", 50))
    return writer.last_receipt


def grouped_query() -> StarQuery:
    return StarQuery.build(
        "sales",
        group_by=[ColumnRef("store", "s_city")],
        aggregates=[
            AggregateSpec("sum", "sales", "f_total"),
            AggregateSpec("count"),
        ],
        label="ingest-equivalence",
    )


class TestStreamingEquivalence:
    """Streamed + upserted == bulk-loaded, on every execution path."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"execution": "tuple"},
            {"execution": "batched"},
            {"execution": "tuple", "enable_updates": True},
            {"execution": "batched", "enable_updates": True},
            {"backend": "process"},
        ],
        ids=["tuple", "batched", "tuple-mvcc", "batched-mvcc", "process"],
    )
    def test_streamed_dataset_matches_bulk(self, kwargs):
        bulk_catalog, _ = make_tiny_star()
        partial, star = make_partial_star()
        query = grouped_query()
        expected = evaluate_star_query(query, bulk_catalog)
        warehouse = Warehouse(partial, star, **kwargs)
        try:
            receipt = stream_the_tail(warehouse)
            assert receipt["rows"] == len(STREAMED_SALES) + 1
            handle = warehouse.submit(query)
            warehouse.run()
            assert handle.results(timeout=30.0) == expected
        finally:
            warehouse.close()

    def test_streamed_dataset_matches_bulk_with_service(self):
        bulk_catalog, _ = make_tiny_star()
        partial, star = make_partial_star()
        query = grouped_query()
        expected = evaluate_star_query(query, bulk_catalog)
        warehouse = Warehouse(partial, star, enable_updates=True)
        warehouse.start_service()
        try:
            stream_the_tail(warehouse)
            assert warehouse.submit(query).results(timeout=30.0) == expected
        finally:
            warehouse.close()

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_streamed_dataset_matches_bulk_over_the_wire(self, flavor):
        bulk_catalog, bulk_star = make_tiny_star()
        with repro.connect(catalog=bulk_catalog, star=bulk_star) as bulk:
            expected_count = bulk.execute(COUNT_SQL).fetchall()
            expected_cities = sorted(bulk.execute(CITY_SQL).fetchall())
        partial, star = make_partial_star()
        server = SERVER_CLASSES[flavor](
            Warehouse(partial, star), owns_warehouse=True
        )
        with server:
            with repro.connect(server.url) as connection:
                receipt = connection.ingest(
                    fact_rows=STREAMED_SALES,
                    dim_upserts={"store": [(3, "nice", 50)]},
                )
                assert receipt["rows"] == len(STREAMED_SALES) + 1
                assert receipt["generation"] >= 1
                assert connection.execute(COUNT_SQL).fetchall() == (
                    expected_count
                )
                assert sorted(connection.execute(CITY_SQL).fetchall()) == (
                    expected_cities
                )

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_async_client_streams_the_same_dataset(self, flavor):
        bulk_catalog, bulk_star = make_tiny_star()
        with repro.connect(catalog=bulk_catalog, star=bulk_star) as bulk:
            expected_count = bulk.execute(COUNT_SQL).fetchall()
        partial, star = make_partial_star()
        server = SERVER_CLASSES[flavor](
            Warehouse(partial, star), owns_warehouse=True
        )

        async def scenario():
            pool = await repro.connect_async(server.url, pool_size=2)
            try:
                receipt = await pool.ingest(
                    fact_rows=STREAMED_SALES,
                    dim_upserts={"store": [(3, "nice", 50)]},
                )
                cursor = await pool.execute(COUNT_SQL)
                return receipt, await cursor.fetchall()
            finally:
                await pool.close()

        with server:
            receipt, count = asyncio.run(scenario())
        assert receipt["rows"] == len(STREAMED_SALES) + 1
        assert count == expected_count


class TestBackpressureAndValidation:
    def test_full_buffer_raises_typed_backpressure(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, ingest_buffer_rows=4)
        try:
            ticket = warehouse.ingest(
                fact_rows=[(1, 10, 1, 5)] * 4
            )  # stages, nothing drains without a driver
            with pytest.raises(IngestBackpressureError):
                warehouse.ingest(fact_rows=[(1, 10, 1, 5)])
            assert not ticket.done
        finally:
            warehouse.close()
        assert ticket.applied  # close() drained the staged batch

    def test_invalid_rows_and_unknown_dimensions_are_rejected(
        self, tiny_star
    ):
        from repro.errors import SchemaError

        catalog, star = tiny_star
        with Warehouse(catalog, star) as warehouse:
            with pytest.raises(SchemaError):
                warehouse.ingest(fact_rows=[(1, 10, 1)])  # arity
            with pytest.raises(SchemaError):
                warehouse.ingest(dim_upserts={"nope": [(1, "x", 2)]})
            with pytest.raises(SchemaError):
                # fact table has no primary key: no upserts
                warehouse.ingest(dim_upserts={"sales": [(1, 10, 1, 5)]})
            with pytest.raises(IngestError):
                warehouse.ingest()  # empty write set

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_per_connection_bound_is_typed_over_the_wire(self, flavor):
        catalog, star = make_tiny_star()
        server = SERVER_CLASSES[flavor](
            Warehouse(catalog, star),
            owns_warehouse=True,
            max_pending_ingest_rows_per_connection=4,
        )
        with server:
            with repro.connect(server.url) as connection:
                with pytest.raises(OperationalError, match="ingest"):
                    connection.ingest(fact_rows=[(1, 10, 1, 5)] * 5)
                # the connection survives typed back-pressure
                assert connection.ingest(
                    fact_rows=[(1, 10, 1, 5)]
                )["rows"] == 1

    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_remote_schema_violation_is_programming_error(self, flavor):
        catalog, star = make_tiny_star()
        server = SERVER_CLASSES[flavor](
            Warehouse(catalog, star), owns_warehouse=True
        )
        with server:
            with repro.connect(server.url) as connection:
                with pytest.raises(ProgrammingError):
                    connection.ingest(fact_rows=[(1, 10, 1)])


class TestCloseDeterminism:
    def test_close_applies_unblocked_batches(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        ticket = warehouse.ingest(fact_rows=[(1, 10, 7, 35)])
        warehouse.close()
        assert ticket.applied
        assert ticket.result(timeout=0)["rows"] == 1
        assert catalog.table("sales").row_count == 13

    def test_close_rejects_batches_stuck_behind_queries(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)  # non-MVCC: applies defer
        handle = warehouse.submit(grouped_query())  # registered, undrained
        ticket = warehouse.ingest(fact_rows=[(1, 10, 7, 35)])
        warehouse.close()
        assert ticket.done and not ticket.applied
        with pytest.raises(IngestError, match="closed"):
            ticket.result(timeout=0)
        assert catalog.table("sales").row_count == 12  # nothing torn
        assert not handle.done

    def test_ingest_after_close_is_rejected(self, tiny_star):
        from repro.errors import QueryError

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.close()
        with pytest.raises(QueryError):
            warehouse.ingest(fact_rows=[(1, 10, 1, 5)])


class TestProtocolV1Gate:
    @pytest.mark.parametrize("flavor", sorted(SERVER_CLASSES))
    def test_v1_session_gets_a_clean_error_and_keeps_serving(self, flavor):
        catalog, star = make_tiny_star()
        server = SERVER_CLASSES[flavor](
            Warehouse(catalog, star), owns_warehouse=True
        )
        with server:
            host, port = server.address
            sock = socket.create_connection((host, port), timeout=10.0)
            reader = sock.makefile("rb")
            try:
                sock.sendall(
                    protocol.encode_frame(
                        {"type": protocol.HELLO, "version": 1}
                    )
                )
                assert protocol.read_frame(reader)["version"] == 1
                sock.sendall(
                    protocol.encode_frame(
                        {
                            "type": protocol.INGEST,
                            "fact_rows": [[1, 10, 1, 5]],
                        }
                    )
                )
                reply = protocol.read_frame(reader)
                assert reply["type"] == protocol.ERROR
                assert reply["error"]["class"] == "NotSupportedError"
                assert "version 2" in reply["error"]["message"]
                # the connection survives: a later EXECUTE still answers
                sock.sendall(
                    protocol.encode_frame(
                        {"type": protocol.EXECUTE, "sql": COUNT_SQL}
                    )
                )
                assert (
                    protocol.read_frame(reader)["type"]
                    == protocol.EXECUTE_OK
                )
            finally:
                reader.close()
                sock.close()

    def test_v1_client_raises_before_the_round_trip(self):
        catalog, star = make_tiny_star()
        with WarehouseServer(
            Warehouse(catalog, star), owns_warehouse=True
        ) as server:
            connection = repro.connect(server.url)
            try:
                connection.protocol_version = 1
                with pytest.raises(NotSupportedError, match="version 2"):
                    connection.ingest(fact_rows=[(1, 10, 1, 5)])
            finally:
                connection.protocol_version = 2
                connection.close()
