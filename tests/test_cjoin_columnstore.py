"""Tests for CJOIN over a column-store fact table (section 5)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.cjoin.columnstore import (
    ColumnMergeContinuousScan,
    ColumnStoreCJoinOperator,
    fact_columns_needed,
)
from repro.errors import AdmissionError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnStoreTable
from repro.storage.iostats import IOStats
from tests.conftest import make_tiny_star


def column_setup():
    """The tiny star with its fact table stored column-wise."""
    row_catalog, star = make_tiny_star()
    rows = row_catalog.table("sales").all_rows()
    column_fact = ColumnStoreTable.from_rows(star.fact, rows, values_per_page=4)
    catalog = Catalog()
    for name in ("store", "product"):
        catalog.register_table(row_catalog.table(name))
    catalog.register_table(column_fact)  # duck-typed fact entry
    catalog.register_star(star)
    return catalog, star, column_fact, row_catalog


def city_query(city):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        group_by=[ColumnRef("product", "p_category")],
        aggregates=[AggregateSpec("count")],
    )


class TestFactColumnsNeeded:
    def test_collects_fks_predicates_and_outputs(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_id", "=", 1)},
            fact_predicate=Comparison("f_qty", ">", 1),
            group_by=[ColumnRef("sales", "f_product")],
            aggregates=[
                AggregateSpec(
                    "sum", "sales", "f_total", column2="f_qty", combine="-"
                )
            ],
        )
        assert fact_columns_needed(query, star) == {
            "f_store",      # FK of referenced store
            "f_qty",        # fact predicate + aggregate input 2
            "f_product",    # fact-side group-by
            "f_total",      # aggregate input 1
        }


class TestColumnMergeScan:
    def test_wraps_with_stable_order(self):
        _, star, column_fact, _ = column_setup()
        scan = ColumnMergeContinuousScan(
            column_fact, ["f_store", "f_qty"], BufferPool(32)
        )
        rows = column_fact.row_count
        first = [scan.next() for _ in range(rows)]
        second = [scan.next() for _ in range(rows)]
        assert first == second
        position, row = first[0]
        assert position == 0
        assert row[0] is not None and row[2] is not None  # f_store, f_qty
        assert row[1] is None and row[3] is None          # unselected

    def test_unknown_column_rejected(self):
        _, _, column_fact, _ = column_setup()
        with pytest.raises(AdmissionError):
            ColumnMergeContinuousScan(column_fact, ["wat"], BufferPool(8))


class TestColumnStoreOperator:
    def test_matches_reference(self):
        catalog, star, column_fact, row_catalog = column_setup()
        operator = ColumnStoreCJoinOperator(
            catalog,
            star,
            column_fact,
            scanned_columns=["f_store", "f_product"],
        )
        query = city_query("paris")
        handle = operator.submit(query)
        operator.run_until_drained()
        assert handle.results() == evaluate_star_query(query, row_catalog)

    def test_concurrent_queries_share_the_merge_scan(self):
        catalog, star, column_fact, row_catalog = column_setup()
        operator = ColumnStoreCJoinOperator(
            catalog,
            star,
            column_fact,
            scanned_columns=["f_store", "f_product", "f_total"],
        )
        queries = [city_query(c) for c in ("lyon", "nice")]
        queries.append(
            StarQuery.build(
                "sales",
                group_by=[ColumnRef("store", "s_city")],
                aggregates=[AggregateSpec("sum", "sales", "f_total")],
            )
        )
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()
        for query, handle in zip(queries, handles):
            assert handle.results() == evaluate_star_query(query, row_catalog)

    def test_query_needing_unscanned_column_rejected(self):
        catalog, star, column_fact, _ = column_setup()
        operator = ColumnStoreCJoinOperator(
            catalog, star, column_fact,
            scanned_columns=["f_store", "f_product"],
        )
        needs_qty = StarQuery.build(
            "sales",
            fact_predicate=Comparison("f_qty", ">", 1),
            aggregates=[AggregateSpec("count")],
        )
        with pytest.raises(AdmissionError):
            operator.submit(needs_qty)
        # and the rejected admission must not leak a query id slot
        operator.submit(city_query("lyon"))

    def test_io_volume_scales_with_projection_width(self):
        catalog, star, column_fact, row_catalog = column_setup()
        reads = {}
        for columns in (["f_store", "f_product"],
                        ["f_store", "f_product", "f_qty", "f_total"]):
            stats = IOStats()
            operator = ColumnStoreCJoinOperator(
                catalog,
                star,
                column_fact,
                scanned_columns=columns,
                buffer_pool=BufferPool(2, stats),
            )
            handle = operator.submit(city_query("lyon"))
            operator.run_until_drained()
            assert handle.done
            reads[len(columns)] = stats.disk_reads
        assert reads[2] < reads[4]

    def test_default_projection_covers_all_foreign_keys(self):
        catalog, star, column_fact, row_catalog = column_setup()
        operator = ColumnStoreCJoinOperator(catalog, star, column_fact)
        assert set(operator.scan.column_names) == {"f_store", "f_product"}
        query = city_query("lyon")
        handle = operator.submit(query)
        operator.run_until_drained()
        assert handle.results() == evaluate_star_query(query, row_catalog)

    def test_pages_per_cycle_reports_projection_volume(self):
        catalog, star, column_fact, _ = column_setup()
        narrow = ColumnStoreCJoinOperator(
            catalog, star, column_fact, scanned_columns=["f_store", "f_product"]
        )
        wide = ColumnStoreCJoinOperator(
            catalog, star, column_fact,
            scanned_columns=["f_store", "f_product", "f_qty", "f_total"],
        )
        assert narrow.pages_per_cycle() < wide.pages_per_cycle()
