"""Materialized dimension views and their transparent use by admission."""

import pytest

from repro.cjoin import CJoinOperator
from repro.errors import SchemaError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import And, Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.matview import DimensionView


def big_stores_predicate():
    return Comparison("s_size", ">", 75)


def big_stores_query():
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": big_stores_predicate()},
        aggregates=[AggregateSpec("count")],
    )


class TestDimensionView:
    def test_materialize_evaluates_the_predicate(self, tiny_star):
        catalog, _ = tiny_star
        view = DimensionView.materialize(
            "big_stores", catalog.table("store"), big_stores_predicate()
        )
        assert view.row_count == 2  # lyon (100) and paris (250)
        assert view.rows() == [(1, "lyon", 100), (2, "paris", 250)]

    def test_matches_requires_structural_equality(self, tiny_star):
        catalog, _ = tiny_star
        view = DimensionView.materialize(
            "big_stores", catalog.table("store"), big_stores_predicate()
        )
        assert view.matches("store", Comparison("s_size", ">", 75))
        assert not view.matches("store", Comparison("s_size", ">", 80))
        assert not view.matches("product", big_stores_predicate())
        # compound predicates compare structurally too
        compound = And(big_stores_predicate(), Comparison("s_id", ">", 0))
        assert not view.matches("store", compound)

    def test_rows_are_validated(self, tiny_star):
        catalog, star = tiny_star
        with pytest.raises(Exception):
            DimensionView(
                "bad", star.dimension("store"), big_stores_predicate(),
                [("wrong", "arity")],
            )

    def test_invalid_name(self, tiny_star):
        catalog, star = tiny_star
        with pytest.raises(SchemaError):
            DimensionView(
                "bad name", star.dimension("store"),
                big_stores_predicate(), [],
            )


class TestCatalogRegistry:
    def test_register_and_find(self, tiny_star):
        catalog, _ = tiny_star
        view = DimensionView.materialize(
            "big_stores", catalog.table("store"), big_stores_predicate()
        )
        catalog.register_dimension_view(view)
        assert catalog.dimension_view_names() == ["big_stores"]
        assert catalog.find_dimension_view(
            "store", big_stores_predicate()
        ) is view
        assert catalog.find_dimension_view(
            "store", Comparison("s_size", ">", 10)
        ) is None

    def test_duplicate_name_rejected(self, tiny_star):
        catalog, _ = tiny_star
        view = DimensionView.materialize(
            "v", catalog.table("store"), big_stores_predicate()
        )
        catalog.register_dimension_view(view)
        with pytest.raises(SchemaError):
            catalog.register_dimension_view(view)

    def test_unknown_dimension_rejected(self, tiny_star):
        catalog, star = tiny_star
        view = DimensionView(
            "v", star.dimension("store"), big_stores_predicate(), []
        )
        from repro.catalog.catalog import Catalog

        with pytest.raises(SchemaError):
            Catalog().register_dimension_view(view)


class TestAdmissionUsesViews:
    def test_matching_view_avoids_dimension_io(self, tiny_star):
        catalog, star = tiny_star
        catalog.register_dimension_view(
            DimensionView.materialize(
                "big_stores", catalog.table("store"), big_stores_predicate()
            )
        )
        stats = IOStats()
        operator = CJoinOperator(
            catalog, star, buffer_pool=BufferPool(64, stats)
        )
        handle = operator.submit(big_stores_query())
        store_heap_id = catalog.table("store").heap.heap_id
        assert stats._last_page.get(store_heap_id) is None  # no store pages
        operator.run_until_drained()
        assert handle.results() == evaluate_star_query(
            big_stores_query(), catalog
        )

    def test_non_matching_predicate_falls_back(self, tiny_star):
        catalog, star = tiny_star
        catalog.register_dimension_view(
            DimensionView.materialize(
                "big_stores", catalog.table("store"), big_stores_predicate()
            )
        )
        operator = CJoinOperator(catalog, star)
        other = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_size", ">", 10)},
            aggregates=[AggregateSpec("count")],
        )
        assert operator.execute(other) == evaluate_star_query(other, catalog)

    def test_view_and_scan_admissions_agree(self, tiny_star):
        catalog, star = tiny_star
        plain = CJoinOperator(catalog, star).execute(big_stores_query())
        catalog.register_dimension_view(
            DimensionView.materialize(
                "big_stores", catalog.table("store"), big_stores_predicate()
            )
        )
        viewed = CJoinOperator(catalog, star).execute(big_stores_query())
        assert plain == viewed
