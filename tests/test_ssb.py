"""Unit tests for the SSB schema, generator, and queries."""

import pytest

from repro.errors import BenchmarkError, QueryError
from repro.query.reference import evaluate_star_query
from repro.ssb import vocab
from repro.ssb.generator import SSBGenerator, table_row_counts
from repro.ssb.queries import (
    ALL_QUERY_NAMES,
    WORKLOAD_TEMPLATE_NAMES,
    ssb_query,
    ssb_workload_generator,
    workload_templates,
)
from repro.ssb.schema import ssb_star_schema


class TestScalingRules:
    def test_reference_scale(self):
        counts = table_row_counts(1.0)
        assert counts["lineorder"] == 6_000_000
        assert counts["customer"] == 30_000
        assert counts["supplier"] == 2_000
        assert counts["part"] == 200_000
        assert counts["date"] == 2556

    def test_part_grows_logarithmically(self):
        assert table_row_counts(10)["part"] == pytest.approx(
            200_000 * (1 + 3.3219), rel=0.01
        )

    def test_date_is_fixed_at_full_scale(self):
        assert table_row_counts(100)["date"] == 2556

    def test_milli_scale_is_linear(self):
        counts = table_row_counts(0.001)
        assert counts["lineorder"] == 6000
        assert counts["customer"] == 30

    def test_non_positive_scale_rejected(self):
        with pytest.raises(BenchmarkError):
            table_row_counts(0)


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = SSBGenerator(0.0005, seed=3).generate_all()
        b = SSBGenerator(0.0005, seed=3).generate_all()
        assert a == b

    def test_different_seeds_differ(self):
        a = SSBGenerator(0.0005, seed=3).lineorder_rows()
        b = SSBGenerator(0.0005, seed=4).lineorder_rows()
        assert a != b

    def test_rows_match_schemas(self, ssb_small):
        catalog, star = ssb_small
        for name in ["date", "customer", "supplier", "part", "lineorder"]:
            table = catalog.table(name)
            for row in table.all_rows()[:50]:
                table.schema.validate_row(row)

    def test_foreign_keys_resolve(self, ssb_small):
        catalog, star = ssb_small
        fact = catalog.table("lineorder")
        for name in star.dimension_names():
            fk_index = star.fact_fk_index(name)
            dimension = catalog.table(name)
            for row in fact.all_rows()[:200]:
                assert dimension.lookup_pk(row[fk_index]) is not None

    def test_regions_match_nations(self, ssb_small):
        catalog, _ = ssb_small
        customer = catalog.table("customer")
        nation_index = customer.schema.column_index("c_nation")
        region_index = customer.schema.column_index("c_region")
        for row in customer.all_rows():
            assert vocab.REGION_OF[row[nation_index]] == row[region_index]

    def test_revenue_consistent_with_discount(self, ssb_small):
        catalog, _ = ssb_small
        fact = catalog.table("lineorder")
        schema = fact.schema
        price = schema.column_index("lo_extendedprice")
        discount = schema.column_index("lo_discount")
        revenue = schema.column_index("lo_revenue")
        for row in fact.all_rows()[:100]:
            assert row[revenue] == row[price] * (100 - row[discount]) // 100


class TestQueries:
    def test_all_thirteen_queries_build_and_validate(self):
        star = ssb_star_schema()
        for name in ALL_QUERY_NAMES:
            ssb_query(name).validate(star)

    def test_unknown_query_name(self):
        with pytest.raises(QueryError):
            ssb_query("Q9.9")

    def test_q1_queries_have_fact_predicates_and_no_group_by(self):
        for name in ("Q1.1", "Q1.2", "Q1.3"):
            query = ssb_query(name)
            assert query.fact_predicate is not None
            assert query.group_by == ()

    def test_flight_4_aggregates_profit(self):
        query = ssb_query("Q4.2")
        (spec,) = query.aggregates
        assert spec.column == "lo_revenue"
        assert spec.column2 == "lo_supplycost"
        assert spec.combine == "-"

    def test_workload_excludes_flight_1(self):
        names = [template.name for template in workload_templates()]
        assert names == list(WORKLOAD_TEMPLATE_NAMES)
        assert not any(name.startswith("Q1") for name in names)

    def test_queries_evaluate_on_milli_scale(self, ssb_small):
        catalog, _ = ssb_small
        for name in ("Q1.1", "Q2.1", "Q3.1", "Q4.1"):
            evaluate_star_query(ssb_query(name), catalog)  # must not raise


class TestWorkloadSelectivity:
    def test_data_derived_domains_give_exact_selectivity(self, ssb_small):
        catalog, star = ssb_small
        generator = ssb_workload_generator(seed=7, catalog=catalog)
        query = generator.generate_from("Q3.1", selectivity=0.5)
        from repro.query.predicate import estimate_selectivity

        # the customer predicate selects ~50% of customer *cities*;
        # with uniform city assignment row selectivity tracks it loosely
        # (supplier is too small at milli-scale to be meaningful)
        customer = catalog.table("customer")
        fraction = estimate_selectivity(
            query.predicate_on("customer"),
            customer.all_rows(),
            customer.schema,
        )
        assert 0.05 <= fraction <= 0.95

    def test_generated_queries_validate(self, ssb_small, ssb_workload):
        _, star = ssb_small
        for query in ssb_workload:
            query.validate(star)
