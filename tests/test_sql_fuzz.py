"""SQL front-end robustness fuzzing.

Whatever text arrives, the parser must either return a valid StarQuery
or raise ParseError/QueryError — never crash with an unrelated
exception, never hang, never return a malformed query.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import QueryError
from repro.query.reference import evaluate_star_query
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_star_query
from tests.conftest import make_tiny_star

_CATALOG, _STAR = make_tiny_star()

#: fragments biased toward almost-valid star queries
FRAGMENTS = st.sampled_from(
    [
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "AND", "OR",
        "NOT", "BETWEEN", "IN", "AS", "COUNT", "SUM", "MIN", "MAX", "AVG",
        "sales", "store", "product", "s_id", "s_city", "f_store", "f_qty",
        "p_category", "*", "(", ")", ",", ".", "=", "<", ">", "<=", ">=",
        "<>", "!=", "-", "+", "42", "3.14", "'lyon'", "'it''s'", "x",
        "COUNT(*)", "f_store = s_id", "BETWEEN 1 AND 5",
    ]
)


@settings(max_examples=300, deadline=None)
@given(st.lists(FRAGMENTS, min_size=1, max_size=25))
def test_fragment_soup_never_crashes_unexpectedly(fragments):
    sql = " ".join(fragments)
    try:
        query = parse_star_query(sql, _STAR)
    except QueryError:
        return  # ParseError is a QueryError; both acceptable
    # if it parsed, it must be executable
    query.validate(_STAR)
    evaluate_star_query(query, _CATALOG)


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=80))
def test_arbitrary_text_never_crashes_the_lexer(text):
    try:
        tokenize(text)
    except QueryError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="SELCTFROMWHE 'sales'()*=,.", max_size=60))
def test_sqlish_text_never_crashes_the_parser(text):
    try:
        parse_star_query(text, _STAR)
    except QueryError:
        pass
