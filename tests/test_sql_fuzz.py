"""SQL front-end robustness fuzzing.

Whatever text arrives, the parser must either return a valid StarQuery
or raise ParseError/QueryError — never crash with an unrelated
exception, never hang, never return a malformed query.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import QueryError
from repro.query.reference import evaluate_star_query
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_star_query
from tests.conftest import make_tiny_star

_CATALOG, _STAR = make_tiny_star()

#: fragments biased toward almost-valid star queries
FRAGMENTS = st.sampled_from(
    [
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "AND", "OR",
        "NOT", "BETWEEN", "IN", "AS", "COUNT", "SUM", "MIN", "MAX", "AVG",
        "sales", "store", "product", "s_id", "s_city", "f_store", "f_qty",
        "p_category", "*", "(", ")", ",", ".", "=", "<", ">", "<=", ">=",
        "<>", "!=", "-", "+", "42", "3.14", "'lyon'", "'it''s'", "x",
        "COUNT(*)", "f_store = s_id", "BETWEEN 1 AND 5",
    ]
)


@settings(max_examples=300, deadline=None)
@given(st.lists(FRAGMENTS, min_size=1, max_size=25))
def test_fragment_soup_never_crashes_unexpectedly(fragments):
    sql = " ".join(fragments)
    try:
        query = parse_star_query(sql, _STAR)
    except QueryError:
        return  # ParseError is a QueryError; both acceptable
    # if it parsed, it must be executable
    query.validate(_STAR)
    evaluate_star_query(query, _CATALOG)


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=80))
def test_arbitrary_text_never_crashes_the_lexer(text):
    try:
        tokenize(text)
    except QueryError:
        pass


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet="SELCTFROMWHE 'sales'()*=,.?:", max_size=60))
def test_sqlish_text_never_crashes_the_parser(text):
    try:
        parse_star_query(text, _STAR)
    except QueryError:
        pass


# ----------------------------------------------------------------------
# Parameter binding (DESIGN.md section 10)
# ----------------------------------------------------------------------
_QMARK_SQL = (
    "SELECT COUNT(*) FROM sales, store "
    "WHERE f_store = s_id AND s_city = ?"
)
_NAMED_SQL = (
    "SELECT COUNT(*) FROM sales, store "
    "WHERE f_store = s_id AND s_city = :city AND s_size BETWEEN :lo AND :hi"
)


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=40))
def test_bound_string_equals_inline_quoted_literal(value):
    """Binding is injection-proof: any text, including quotes and SQL
    fragments, binds to exactly the query its escaped literal form
    parses to — and never to anything else."""
    bound = parse_star_query(_QMARK_SQL, _STAR, (value,))
    escaped = value.replace("'", "''")
    inline = parse_star_query(
        f"SELECT COUNT(*) FROM sales, store "
        f"WHERE f_store = s_id AND s_city = '{escaped}'",
        _STAR,
    )
    assert bound == inline
    evaluate_star_query(bound, _CATALOG)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=-10**9, max_value=10**9),
    st.integers(min_value=-10**9, max_value=10**9),
    st.text(max_size=20),
)
def test_named_binding_matches_literals(low, high, city):
    bound = parse_star_query(
        _NAMED_SQL, _STAR, {"city": city, "lo": low, "hi": high}
    )
    escaped = city.replace("'", "''")
    inline = parse_star_query(
        f"SELECT COUNT(*) FROM sales, store WHERE f_store = s_id "
        f"AND s_city = '{escaped}' AND s_size BETWEEN {low} AND {high}",
        _STAR,
    )
    assert bound == inline
    evaluate_star_query(bound, _CATALOG)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.text(max_size=8), min_size=0, max_size=5))
def test_mismatched_qmark_count_raises(values):
    """Anything but exactly one value for one placeholder is rejected."""
    if len(values) == 1:
        parse_star_query(_QMARK_SQL, _STAR, tuple(values))
        return
    with pytest.raises(QueryError):
        parse_star_query(_QMARK_SQL, _STAR, tuple(values))


def test_none_parameter_raises():
    with pytest.raises(QueryError, match="None"):
        parse_star_query(_QMARK_SQL, _STAR, (None,))
    with pytest.raises(QueryError, match="None"):
        parse_star_query(
            _NAMED_SQL, _STAR, {"city": None, "lo": 1, "hi": 2}
        )


def test_unbindable_types_raise():
    for value in ([1, 2], {"a": 1}, object(), b"bytes"):
        with pytest.raises(QueryError, match="must be int, float, or str"):
            parse_star_query(_QMARK_SQL, _STAR, (value,))


def test_missing_and_extra_named_parameters_raise():
    with pytest.raises(QueryError, match="missing"):
        parse_star_query(_NAMED_SQL, _STAR, {"city": "lyon", "lo": 1})
    with pytest.raises(QueryError, match="unused"):
        parse_star_query(
            _NAMED_SQL, _STAR,
            {"city": "lyon", "lo": 1, "hi": 2, "bogus": 3},
        )


def test_params_to_parameterless_statement_raise():
    with pytest.raises(QueryError, match="no parameter placeholders"):
        parse_star_query(
            "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id",
            _STAR,
            ("stray",),
        )


def test_missing_params_raise():
    with pytest.raises(QueryError, match="no parameters were supplied"):
        parse_star_query(_QMARK_SQL, _STAR)


def test_mixed_styles_raise():
    with pytest.raises(QueryError, match="cannot mix"):
        parse_star_query(
            "SELECT COUNT(*) FROM sales, store "
            "WHERE f_store = s_id AND s_city = ? AND s_size = :size",
            _STAR,
            ("lyon",),
        )


def test_generator_params_bind_like_sequences():
    bound = parse_star_query(_QMARK_SQL, _STAR, (value for value in ["lyon"]))
    inline = parse_star_query(
        "SELECT COUNT(*) FROM sales, store "
        "WHERE f_store = s_id AND s_city = 'lyon'",
        _STAR,
    )
    assert bound == inline
    # an exhausted/empty iterator counts as zero parameters everywhere
    with pytest.raises(QueryError, match="0 parameter"):
        parse_star_query(_QMARK_SQL, _STAR, iter(()))
    parse_star_query(  # ... including for parameterless statements
        "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id",
        _STAR,
        iter(()),
    )


def test_non_iterable_params_raise_query_error():
    with pytest.raises(QueryError, match="sequence or mapping"):
        parse_star_query(_QMARK_SQL, _STAR, 42)
    with pytest.raises(QueryError, match="sequence or mapping"):
        parse_star_query(
            "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id",
            _STAR,
            42,
        )


def test_wrong_params_shape_raises():
    with pytest.raises(QueryError, match="require a sequence"):
        parse_star_query(_QMARK_SQL, _STAR, {"city": "lyon"})
    with pytest.raises(QueryError, match="require a mapping"):
        parse_star_query(_NAMED_SQL, _STAR, ("lyon", 1, 2))


def test_bare_colon_is_a_parse_error():
    with pytest.raises(QueryError, match="named parameter"):
        parse_star_query(
            "SELECT COUNT(*) FROM sales WHERE f_qty = : 1", _STAR
        )
