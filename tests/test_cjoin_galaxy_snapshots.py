"""Tests for the galaxy fact-to-fact join and snapshot handling (3.5, 5)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.cjoin import CJoinOperator
from repro.cjoin.galaxy import GalaxyJoinQuery, evaluate_galaxy_join
from repro.cjoin.snapshots import SnapshotPartitionedCJoin
from repro.errors import QueryError, SnapshotError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import ColumnRef, StarQuery
from repro.storage.mvcc import Snapshot, TransactionManager, VersionedTable
from repro.storage.table import Table

INT = DataType.INT
STRING = DataType.STRING


def galaxy_setup():
    """Two stars sharing a 'customer' key space: orders and shipments."""
    region = TableSchema(
        "region",
        [Column("r_id", INT), Column("r_name", STRING)],
        primary_key="r_id",
    )
    orders = TableSchema(
        "orders",
        [
            Column("o_id", INT),
            Column("o_region", INT),
            Column("o_amount", INT),
        ],
        foreign_keys=[ForeignKey("o_region", "region", "r_id")],
    )
    carrier = TableSchema(
        "carrier",
        [Column("c_id", INT), Column("c_name", STRING)],
        primary_key="c_id",
    )
    shipments = TableSchema(
        "shipments",
        [
            Column("sh_order", INT),
            Column("sh_carrier", INT),
            Column("sh_cost", INT),
        ],
        foreign_keys=[ForeignKey("sh_carrier", "carrier", "c_id")],
    )
    orders_star = StarSchema(fact=orders, dimensions={"region": region})
    shipments_star = StarSchema(fact=shipments, dimensions={"carrier": carrier})

    catalog_a = Catalog()
    catalog_a.register_table(
        Table.from_rows(region, [(1, "east"), (2, "west")])
    )
    catalog_a.register_table(
        Table.from_rows(
            orders,
            [(100, 1, 50), (101, 2, 70), (102, 1, 20), (103, 2, 90)],
        )
    )
    catalog_a.register_star(orders_star)

    catalog_b = Catalog()
    catalog_b.register_table(
        Table.from_rows(carrier, [(1, "fast"), (2, "slow")])
    )
    catalog_b.register_table(
        Table.from_rows(
            shipments,
            [(100, 1, 5), (100, 2, 7), (101, 1, 6), (103, 2, 9), (999, 1, 1)],
        )
    )
    catalog_b.register_star(shipments_star)
    return catalog_a, orders_star, catalog_b, shipments_star


class TestGalaxyJoin:
    def test_fact_to_fact_join_with_aggregation(self):
        catalog_a, star_a, catalog_b, star_b = galaxy_setup()
        left = StarQuery.build(
            "orders",
            dimension_predicates={"region": Comparison("r_name", "=", "east")},
            select=[ColumnRef("orders", "o_id"), ColumnRef("orders", "o_amount")],
        )
        right = StarQuery.build(
            "shipments",
            select=[
                ColumnRef("shipments", "sh_order"),
                ColumnRef("shipments", "sh_cost"),
            ],
        )
        galaxy_query = GalaxyJoinQuery(
            left=left,
            right=right,
            left_join_column=0,   # o_id
            right_join_column=0,  # sh_order
            group_by_columns=(0,),  # group by order id
            aggregates=(("sum", 3),),  # sum of sh_cost
        )
        rows = evaluate_galaxy_join(
            galaxy_query,
            CJoinOperator(catalog_a, star_a),
            CJoinOperator(catalog_b, star_b),
        )
        # east orders: 100 (two shipments: 5+7) and 102 (no shipments)
        assert rows == [(100, 12)]

    def test_plain_join_listing(self):
        catalog_a, star_a, catalog_b, star_b = galaxy_setup()
        left = StarQuery.build(
            "orders", select=[ColumnRef("orders", "o_id")]
        )
        right = StarQuery.build(
            "shipments",
            dimension_predicates={"carrier": Comparison("c_name", "=", "fast")},
            select=[ColumnRef("shipments", "sh_order")],
        )
        galaxy_query = GalaxyJoinQuery(
            left=left, right=right, left_join_column=0, right_join_column=0
        )
        rows = evaluate_galaxy_join(
            galaxy_query,
            CJoinOperator(catalog_a, star_a),
            CJoinOperator(catalog_b, star_b),
        )
        assert rows == [(100, 100), (101, 101)]

    def test_aggregating_subqueries_rejected(self):
        catalog_a, star_a, catalog_b, star_b = galaxy_setup()
        aggregating = StarQuery.build(
            "orders", aggregates=[AggregateSpec("count")]
        )
        listing = StarQuery.build(
            "shipments", select=[ColumnRef("shipments", "sh_order")]
        )
        with pytest.raises(QueryError):
            GalaxyJoinQuery(
                left=aggregating,
                right=listing,
                left_join_column=0,
                right_join_column=0,
            )

    def test_join_column_bounds_checked(self):
        catalog_a, star_a, catalog_b, star_b = galaxy_setup()
        left = StarQuery.build("orders", select=[ColumnRef("orders", "o_id")])
        right = StarQuery.build(
            "shipments", select=[ColumnRef("shipments", "sh_order")]
        )
        with pytest.raises(QueryError):
            GalaxyJoinQuery(
                left=left, right=right, left_join_column=5, right_join_column=0
            )


def versioned_setup():
    """A tiny fact with updates: snapshot 0 vs snapshot 1."""
    from tests.conftest import make_tiny_star

    catalog, star = make_tiny_star()
    fact = catalog.table("sales")
    versioned = VersionedTable(fact)
    transactions = TransactionManager()
    # snapshot 1: delete first row, add two rows
    transactions.commit(
        versioned,
        inserts=[(1, 10, 7, 35), (3, 20, 1, 30)],
        deletes=[0],
    )
    return catalog, star, versioned, transactions


class TestSnapshotVirtualPredicate:
    def test_queries_on_different_snapshots_share_one_operator(self):
        catalog, star, versioned, transactions = versioned_setup()
        operator = CJoinOperator(catalog, star, versioned_fact=versioned)
        import dataclasses

        base = StarQuery.build(
            "sales",
            aggregates=[
                AggregateSpec("count"),
                AggregateSpec("sum", "sales", "f_qty"),
            ],
        )
        old = dataclasses.replace(base, snapshot_id=0)
        new = dataclasses.replace(base, snapshot_id=1)
        old_handle = operator.submit(old)
        new_handle = operator.submit(new)
        operator.run_until_drained()
        # snapshot 0: the original 12 rows, qty total 27
        assert old_handle.results() == [(12, 27)]
        # snapshot 1: 12 - 1 + 2 = 13 rows, qty 27 - 2 + 7 + 1 = 33
        assert new_handle.results() == [(13, 33)]

    def test_matches_reference_with_versions(self):
        catalog, star, versioned, transactions = versioned_setup()
        import dataclasses

        from repro.query.reference import evaluate_star_query

        operator = CJoinOperator(catalog, star, versioned_fact=versioned)
        query = dataclasses.replace(
            StarQuery.build(
                "sales",
                dimension_predicates={
                    "product": Comparison("p_category", "=", "food")
                },
                group_by=[ColumnRef("store", "s_city")],
                aggregates=[AggregateSpec("sum", "sales", "f_total")],
            ),
            snapshot_id=1,
        )
        handle = operator.submit(query)
        operator.run_until_drained()
        assert handle.results() == evaluate_star_query(
            query, catalog, versioned_fact=versioned
        )


class TestSnapshotPartitionedCJoin:
    def _catalog_for_snapshot(self):
        catalog, star, versioned, _ = versioned_setup()

        def build(snapshot_id: int) -> Catalog:
            snapshot_catalog = Catalog()
            for name in ("store", "product"):
                snapshot_catalog.register_table(catalog.table(name))
            fact = Table(star.fact)
            for row in versioned.visible_rows(Snapshot(snapshot_id)):
                fact.insert(row)
            snapshot_catalog.register_table(fact)
            snapshot_catalog.register_star(star)
            return snapshot_catalog

        return build, star

    def test_routes_by_snapshot_and_reuses_operators(self):
        build, star = self._catalog_for_snapshot()
        router = SnapshotPartitionedCJoin(build, star)
        import dataclasses

        base = StarQuery.build("sales", aggregates=[AggregateSpec("count")])
        handles = [
            router.submit(dataclasses.replace(base, snapshot_id=sid))
            for sid in (0, 1, 0)
        ]
        assert router.operator_count == 2  # snapshot 0 operator reused
        router.run_until_drained()
        assert handles[0].results() == [(12,)]
        assert handles[1].results() == [(13,)]
        assert handles[2].results() == [(12,)]

    def test_untagged_query_rejected(self):
        build, star = self._catalog_for_snapshot()
        router = SnapshotPartitionedCJoin(build, star)
        with pytest.raises(SnapshotError):
            router.submit(StarQuery.build("sales"))
