"""End-to-end tests of the CJOIN operator (sections 3.1-3.4).

Everything here runs the *real* pipeline on real data and compares
against the reference evaluator.
"""

import pytest

from repro.cjoin import CJoinOperator
from repro.cjoin.optimizer import DropRatePolicy, FixedOrderPolicy
from repro.cjoin.executor import ExecutorConfig
from repro.errors import AdmissionError, PipelineError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats


def city_query(city, label=None):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        group_by=[ColumnRef("product", "p_category")],
        aggregates=[AggregateSpec("sum", "sales", "f_total")],
        label=label,
    )


class TestSingleQuery:
    def test_matches_reference(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        query = city_query("lyon")
        assert operator.execute(query) == evaluate_star_query(query, catalog)

    def test_fact_predicate_supported(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        query = StarQuery.build(
            "sales",
            fact_predicate=Comparison("f_qty", ">", 2),
            aggregates=[AggregateSpec("count")],
        )
        assert operator.execute(query) == evaluate_star_query(query, catalog)

    def test_listing_query(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        query = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_id", "=", 2)},
            select=[ColumnRef("sales", "f_product"), ColumnRef("store", "s_city")],
        )
        assert operator.execute(query) == evaluate_star_query(query, catalog)

    def test_empty_result(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        query = city_query("atlantis")
        assert operator.execute(query) == []


class TestConcurrentQueries:
    def test_batch_of_queries_matches_reference(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        queries = [city_query(c) for c in ("lyon", "paris", "nice")]
        handles = [operator.submit(q) for q in queries]
        operator.run_until_drained()
        for query, handle in zip(queries, handles):
            assert handle.results() == evaluate_star_query(query, catalog)

    def test_single_scan_shared_across_queries(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        for city in ("lyon", "paris", "nice"):
            operator.submit(city_query(city))
        operator.run_until_drained()
        fact_rows = catalog.table("sales").row_count
        # all three queries served by one wrap of the scan (+1 tuple to
        # detect the wrap-around)
        assert operator.stats.tuples_scanned <= fact_rows + 1

    def test_mid_scan_admission_sees_exactly_one_cycle(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=2)
        )
        first = operator.submit(city_query("lyon"))
        operator.executor.step()  # advance a few tuples
        operator.executor.step()
        second = operator.submit(city_query("paris"))
        operator.run_until_drained()
        assert first.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )
        assert second.results() == evaluate_star_query(
            city_query("paris"), catalog
        )

    def test_handles_complete_in_wrap_order(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=2)
        )
        first = operator.submit(city_query("lyon"))
        operator.executor.step()
        second = operator.submit(city_query("paris"))
        operator.executor.step()
        # first was admitted earlier in the scan, so it wraps first
        while not first.done:
            operator.executor.step()
        assert not second.done
        operator.run_until_drained()
        assert second.done

    def test_sequential_io_with_many_queries(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        stats = IOStats()
        pool = BufferPool(4, stats)  # tiny pool: misses on every cycle
        operator = CJoinOperator(catalog, star, buffer_pool=pool)
        for query in ssb_workload[:6]:
            operator.submit(query)
        operator.run_until_drained()
        # the shared continuous scan keeps fact I/O sequential even
        # with six concurrent queries (dimension scans at admission
        # contribute the few random reads)
        assert stats.sequential_fraction > 0.5

    def test_probe_budget_is_bounded_by_filter_count(self, tiny_star):
        """At most K probes per scanned tuple, independent of n (3.2.3)."""
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        for city in ("lyon", "paris", "nice"):
            for _ in range(4):
                operator.submit(city_query(city))
        operator.run_until_drained()
        assert operator.stats.probes_per_tuple <= 2.0  # K = 2 dimensions


class TestAdmissionFinalization:
    def test_max_concurrency_enforced(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, max_concurrent=2)
        operator.submit(city_query("lyon"))
        operator.submit(city_query("paris"))
        with pytest.raises(AdmissionError):
            operator.submit(city_query("nice"))

    def test_ids_reclaimed_after_completion(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, max_concurrent=2)
        for round_index in range(3):
            a = operator.submit(city_query("lyon"))
            b = operator.submit(city_query("paris"))
            operator.run_until_drained()
            assert a.done and b.done
        assert operator.active_query_count == 0

    def test_filters_removed_when_tables_empty(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        operator.submit(city_query("lyon"))
        assert operator.filter_order() != ()
        operator.run_until_drained()
        operator.manager.process_finished()
        assert operator.filter_order() == ()

    def test_dimension_tables_shrink_after_finalization(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        wide = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_size", ">", 0)},
            aggregates=[AggregateSpec("count")],
        )
        narrow = city_query("lyon")
        operator.submit(wide)
        handle = operator.submit(narrow)
        operator.run_until_drained()
        operator.manager.process_finished()
        assert handle.done
        assert operator.active_query_count == 0

    def test_progress_reaches_one(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=4)
        )
        handle = operator.submit(city_query("lyon"))
        progresses = [handle.progress]
        while not handle.done:
            operator.executor.step()
            progresses.append(handle.progress)
        assert progresses[-1] == 1.0
        assert all(b >= a for a, b in zip(progresses, progresses[1:]))

    def test_invalid_query_rejected_without_leaking_ids(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, max_concurrent=1)
        bad = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("missing", "=", 1)},
        )
        with pytest.raises(Exception):
            operator.submit(bad)
        # the slot must be free again
        operator.submit(city_query("lyon"))


class TestEmptyFactTable:
    def test_query_on_empty_fact_completes_immediately(self):
        from tests.conftest import make_tiny_star
        from repro.catalog.catalog import Catalog
        from repro.storage.table import Table

        catalog_full, star = make_tiny_star()
        catalog = Catalog()
        for name in ("store", "product"):
            catalog.register_table(catalog_full.table(name))
        catalog.register_table(Table(star.fact))  # empty fact
        catalog.register_star(star)
        operator = CJoinOperator(catalog, star)
        handle = operator.submit(city_query("lyon"))
        operator.run_until_drained()
        assert handle.done
        assert handle.results() == []


class TestRuntimeOptimization:
    def test_filters_reorder_by_observed_selectivity(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog,
            star,
            ordering_policy=DropRatePolicy(),
            executor_config=ExecutorConfig(
                batch_size=4, reoptimize_interval=8, profile_sample_rate=0
            ),
        )
        # store predicate selects 1/3 cities; product predicate selects
        # everything -> store filter should end up first
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "product": Comparison("p_price", ">", 0),
                "store": Comparison("s_city", "=", "nice"),
            },
            aggregates=[AggregateSpec("count")],
        )
        handle = operator.submit(query)
        operator.run_until_drained()
        assert handle.results() == evaluate_star_query(query, catalog)
        # at some point during the run the (more selective) store
        # filter must have been ranked ahead of the product filter
        two_filter_orders = [
            order for order in operator.stats.filter_orders if len(order) == 2
        ]
        assert ("store", "product") in two_filter_orders

    def test_fixed_policy_never_reorders(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog,
            star,
            ordering_policy=FixedOrderPolicy(),
            executor_config=ExecutorConfig(batch_size=4, reoptimize_interval=4),
        )
        for city in ("lyon", "paris"):
            operator.submit(city_query(city))
        operator.run_until_drained()
        assert operator.stats.reoptimizations == 0

    def test_agreedy_reoptimizes_and_stays_correct(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog,
            star,
            executor_config=ExecutorConfig(
                batch_size=4, reoptimize_interval=6, profile_sample_rate=2
            ),
        )
        queries = [city_query(c) for c in ("lyon", "paris", "nice")]
        handles = [operator.submit(q) for q in queries]
        operator.run_until_drained()
        for query, handle in zip(queries, handles):
            assert handle.results() == evaluate_star_query(query, catalog)


class TestAgainstSSB(object):
    def test_workload_equivalence(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        operator = CJoinOperator(catalog, star)
        handles = [operator.submit(q) for q in ssb_workload]
        operator.run_until_drained()
        for query, handle in zip(ssb_workload, handles):
            assert handle.results() == evaluate_star_query(query, catalog), (
                query.label
            )

    def test_staggered_admission_equivalence(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=64)
        )
        handles = []
        for index, query in enumerate(ssb_workload[:6]):
            handles.append(operator.submit(query))
            for _ in range(index):
                operator.executor.step()
        operator.run_until_drained()
        for query, handle in zip(ssb_workload, handles):
            assert handle.results() == evaluate_star_query(query, catalog), (
                query.label
            )


class TestThreadedGuards:
    def test_run_until_drained_requires_sync_executor(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog,
            star,
            executor_config=ExecutorConfig(mode="horizontal", stage_threads=(2,)),
        )
        with pytest.raises(PipelineError):
            operator.run_until_drained()

    def test_start_requires_threaded_executor(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        with pytest.raises(PipelineError):
            operator.start()
