"""Property-based tests: snapshot isolation under streaming ingest.

The invariants the ingest subsystem leans on (DESIGN.md section 15):

* **no torn reads** — a reader holding any snapshot issued before a
  commit sees exactly its pre-commit row set at *every* intermediate
  point of the commit (after each delete, after each insert) because
  new versions carry an ``xmin`` above every issued snapshot until
  the counter bump publishes them, and the bump is the commit's last
  step;
* **all-or-nothing per generation** — an applied ingest batch flips
  visibility atomically: queries stamped before the apply never see
  any of its rows, queries stamped after see all of them, and each
  batch advances the buffer's generation counter by exactly one —
  including its dimension upserts, which land in place under the
  write barrier before any new fact row becomes visible.

The deterministic properties replicate the exact interleaving
``TransactionManager.commit`` performs; the threaded test races real
snapshot readers against a real producer and accepts only whole-batch
counts.
"""

from __future__ import annotations

import threading

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.catalog.schema import Column, DataType, TableSchema
from repro.engine import Warehouse
from repro.query.aggregates import AggregateSpec
from repro.query.star import StarQuery
from repro.storage.mvcc import TransactionManager, VersionedTable
from repro.storage.table import Table
from tests.conftest import make_tiny_star

#: every row of this batch joins store 1 / product 10 in the tiny star
JOINING_ROW = (1, 10, 1, 5)


def _versioned_fixture(initial_rows: list[tuple]) -> VersionedTable:
    schema = TableSchema(
        "facts", [Column("k", DataType.INT), Column("v", DataType.INT)]
    )
    return VersionedTable(
        Table.from_rows(schema, initial_rows, rows_per_page=4)
    )


rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=6,
)


@given(
    initial=rows_strategy,
    batches=st.lists(rows_strategy, min_size=1, max_size=4),
    delete_some=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_no_snapshot_observes_a_partial_commit(
    initial, batches, delete_some
):
    """Mid-commit states are invisible to every issued snapshot.

    Replays commit's exact step order — deletes, inserts, counter
    bump — checking after every single step that each snapshot issued
    so far still sees precisely the rows it saw before the commit
    began.  Only the bump may change any reader's view, and then only
    for snapshots issued after it.
    """
    table = _versioned_fixture(initial)
    manager = TransactionManager()
    issued = [manager.current_snapshot()]
    for batch in batches:
        baseline = {
            snapshot.snapshot_id: table.visible_rows(snapshot)
            for snapshot in issued
        }

        def assert_unchanged():
            for snapshot in issued:
                assert table.visible_rows(snapshot) == (
                    baseline[snapshot.snapshot_id]
                ), "a snapshot observed a partially-applied batch"

        pre_snapshot = manager.current_snapshot()
        txn_id = pre_snapshot.snapshot_id + 1
        live_before = [
            (position, row)
            for position, row in enumerate(table.table.heap.iter_rows())
            if pre_snapshot.can_see(table.version_at(position))
        ]
        deleted_positions: set[int] = set()
        if delete_some and live_before:
            # delete the first live position, exactly as an upsert-
            # as-delete+insert would
            position = live_before[0][0]
            table.delete(position, xmax=txn_id)
            deleted_positions.add(position)
            assert_unchanged()
        for row in batch:
            table.insert(row, xmin=txn_id)
            assert_unchanged()
        committed = manager.commit(table)  # the bump, nothing else
        assert committed.snapshot_id == txn_id
        assert table.visible_rows(committed) == [
            row
            for position, row in live_before
            if position not in deleted_positions
        ] + list(batch)
        issued.append(committed)


@given(batches=st.lists(st.integers(min_value=1, max_value=5),
                        min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_ingest_batches_flip_visibility_all_or_nothing(batches):
    """Queries stamped before an apply exclude the whole batch;
    queries stamped after include the whole batch; one generation per
    batch."""
    catalog, star = make_tiny_star()
    warehouse = Warehouse(catalog, star, enable_updates=True)
    count_query = StarQuery.build(
        "sales",
        dimension_predicates={},
        aggregates=[AggregateSpec("count")],
        label="mvcc-count",
    )
    try:
        applied = 0
        for batch_rows in batches:
            before = warehouse.submit(count_query)  # stamped pre-apply
            warehouse.ingest(fact_rows=[JOINING_ROW] * batch_rows)
            assert warehouse.apply_pending_ingest() == batch_rows
            after = warehouse.submit(count_query)  # stamped post-apply
            warehouse.run()
            assert before.results(timeout=30.0) == [(12 + applied,)]
            applied += batch_rows
            assert after.results(timeout=30.0) == [(12 + applied,)]
        assert warehouse.ingest_buffer.stats()["generation"] == len(batches)
        assert warehouse.ingest_buffer.stats()["rows_applied"] == applied
    finally:
        warehouse.close()


@given(
    upserts=st.dictionaries(
        st.sampled_from([1, 2, 3]),
        st.tuples(
            st.sampled_from(["lyon", "paris", "nice", "brest"]),
            st.integers(min_value=1, max_value=500),
        ),
        min_size=1,
        max_size=3,
    ),
    fact_count=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_dim_upserts_are_atomic_per_generation(upserts, fact_count):
    """A batch's dimension upserts land together with its fact rows in
    one generation: nothing before the apply, everything after."""
    catalog, star = make_tiny_star()
    warehouse = Warehouse(catalog, star, enable_updates=True)
    store = catalog.table("store")
    expected = {row[0]: row for row in store.all_rows()}
    try:
        ticket = warehouse.ingest(
            fact_rows=[JOINING_ROW] * fact_count or None,
            dim_upserts={
                "store": [
                    (key, city, size)
                    for key, (city, size) in upserts.items()
                ]
            },
        )
        # staged but unapplied: the dimension is untouched
        assert {row[0]: row for row in store.all_rows()} == expected
        warehouse.apply_pending_ingest()
        receipt = ticket.result(timeout=30.0)
        assert receipt["generation"] == 1
        for key, (city, size) in upserts.items():
            expected[key] = (key, city, size)
        assert {row[0]: row for row in store.all_rows()} == expected
        # scan order is stable: upserts rewrite in place, never move
        assert [row[0] for row in store.all_rows()] == [1, 2, 3]
    finally:
        warehouse.close()


def test_threaded_readers_only_ever_see_whole_batches():
    """Real snapshot readers racing a real producer: every count is
    12 + 5k for integer k — no reader ever catches a batch half-way."""
    catalog, star = make_tiny_star()
    warehouse = Warehouse(catalog, star, enable_updates=True)
    warehouse.start_service()
    count_query = StarQuery.build(
        "sales",
        dimension_predicates={},
        aggregates=[AggregateSpec("count")],
        label="mvcc-race-count",
    )
    batch = [JOINING_ROW] * 5
    observed: list[int] = []
    failures: list[BaseException] = []
    stop = threading.Event()

    def reader() -> None:
        try:
            while not stop.is_set():
                handle = warehouse.submit(count_query)
                observed.append(handle.results(timeout=30.0)[0][0])
        except BaseException as error:  # pragma: no cover - surfaced below
            failures.append(error)

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        tickets = [warehouse.ingest(fact_rows=batch) for _ in range(12)]
        for ticket in tickets:
            ticket.result(timeout=30.0)
    finally:
        stop.set()
        for thread in threads:
            thread.join(30.0)
        warehouse.close()
    assert not failures, failures
    assert observed, "readers never completed a query"
    torn = [count for count in observed if (count - 12) % len(batch)]
    assert not torn, f"torn batch counts observed: {sorted(set(torn))}"
    assert max(observed) <= 12 + 12 * len(batch)
