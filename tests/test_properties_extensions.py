"""Property-based tests for the extension paths:

partitioned CJOIN, snapshot isolation, mid-scan service admission,
and galaxy joins must agree with straightforward reference
computations on random inputs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.cjoin import CJoinOperator
from repro.cjoin.partitioned import (
    PartitionedCJoinOperator,
    as_catalog_table,
)
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from repro.storage.mvcc import Snapshot, TransactionManager, VersionedTable
from repro.storage.partition import PartitionedTable, RangePartitioning
from repro.storage.table import Table

INT = DataType.INT


def _single_dim_star() -> StarSchema:
    dim = TableSchema(
        "d",
        [Column("d_id", INT), Column("d_num", INT)],
        primary_key="d_id",
    )
    fact = TableSchema(
        "f",
        [Column("f_d", INT), Column("f_key", INT), Column("f_val", INT)],
        foreign_keys=[ForeignKey("f_d", "d", "d_id")],
    )
    return StarSchema(fact=fact, dimensions={"d": dim})


@st.composite
def partitioned_cases(draw):
    """Random fact data, partition boundaries, and interval queries."""
    star = _single_dim_star()
    dim_rows = [(i, draw(st.integers(0, 9))) for i in range(1, 4)]
    fact_rows = [
        (
            draw(st.integers(1, 3)),
            draw(st.integers(0, 30)),
            draw(st.integers(0, 100)),
        )
        for _ in range(draw(st.integers(1, 30)))
    ]
    boundary_set = draw(st.sets(st.integers(1, 29), min_size=1, max_size=3))
    boundaries = tuple(sorted(boundary_set))
    queries = []
    for _ in range(draw(st.integers(1, 3))):
        low = draw(st.integers(0, 30))
        high = draw(st.integers(low, 30))
        queries.append(
            StarQuery.build(
                "f",
                fact_predicate=Between("f_key", low, high),
                aggregates=[
                    AggregateSpec("count"),
                    AggregateSpec("sum", "f", "f_val"),
                ],
            )
        )
    return star, dim_rows, fact_rows, boundaries, queries


@settings(max_examples=40, deadline=None)
@given(case=partitioned_cases())
def test_partitioned_cjoin_matches_reference(case):
    star, dim_rows, fact_rows, boundaries, queries = case
    partitioning = RangePartitioning("f_key", boundaries)
    partitioned = PartitionedTable.from_rows(
        star.fact, partitioning, fact_rows, rows_per_page=4
    )
    catalog = Catalog()
    catalog.register_table(Table.from_rows(star.dimension("d"), dim_rows))
    catalog.register_table(as_catalog_table(partitioned))
    catalog.register_star(star)
    operator = PartitionedCJoinOperator(catalog, star, partitioned)
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    for query, handle in zip(queries, handles):
        assert handle.results() == evaluate_star_query(query, catalog)


@settings(max_examples=40, deadline=None)
@given(case=partitioned_cases())
def test_partition_pruning_never_scans_more_than_full(case):
    star, dim_rows, fact_rows, boundaries, queries = case
    partitioning = RangePartitioning("f_key", boundaries)
    partitioned = PartitionedTable.from_rows(
        star.fact, partitioning, fact_rows, rows_per_page=4
    )
    catalog = Catalog()
    catalog.register_table(Table.from_rows(star.dimension("d"), dim_rows))
    catalog.register_table(as_catalog_table(partitioned))
    catalog.register_star(star)
    operator = PartitionedCJoinOperator(catalog, star, partitioned)
    handle = operator.submit(queries[0])
    operator.run_until_drained()
    assert handle.done
    # one query sees at most one full pass over the whole table (+1
    # tuple of lookahead for the wrap-around)
    assert operator.stats.tuples_scanned <= partitioned.row_count + 1


@st.composite
def midscan_admission_cases(draw):
    """Random data plus queries submitted at random scan offsets."""
    star = _single_dim_star()
    dim_rows = [(i, draw(st.integers(0, 9))) for i in range(1, 4)]
    fact_rows = [
        (
            draw(st.integers(1, 3)),
            draw(st.integers(0, 30)),
            draw(st.integers(0, 100)),
        )
        for _ in range(draw(st.integers(4, 40)))
    ]
    submissions = []
    for _ in range(draw(st.integers(2, 5))):
        low = draw(st.integers(0, 30))
        high = draw(st.integers(low, 30))
        kind = draw(st.sampled_from(["fact", "dimension", "plain"]))
        query = StarQuery.build(
            "f",
            fact_predicate=(
                Between("f_key", low, high) if kind == "fact" else None
            ),
            dimension_predicates=(
                {"d": Between("d_num", 0, draw(st.integers(0, 9)))}
                if kind == "dimension"
                else {}
            ),
            aggregates=[
                AggregateSpec("count"),
                AggregateSpec("sum", "f", "f_val"),
            ],
        )
        #: pipeline batches to advance before this submission lands —
        #: scatters admissions across arbitrary mid-cycle offsets
        submissions.append((query, draw(st.integers(0, 8))))
    return star, dim_rows, fact_rows, submissions


@settings(max_examples=40, deadline=None)
@given(case=midscan_admission_cases())
def test_midscan_service_admission_matches_reference(case):
    """Property: queries joining the live service at arbitrary scan
    offsets — while earlier queries are mid-cycle — return exactly the
    reference evaluator's rows (the paper's claim that admission point
    never affects answers)."""
    from repro.cjoin.executor import ExecutorConfig
    from repro.engine.service import WarehouseService

    star, dim_rows, fact_rows, submissions = case
    catalog = Catalog()
    catalog.register_table(Table.from_rows(star.dimension("d"), dim_rows))
    catalog.register_table(Table.from_rows(star.fact, fact_rows))
    catalog.register_star(star)
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(batch_size=3)
    )
    service = WarehouseService(operator, max_in_flight=2)
    handles = []
    for query, offset in submissions:
        service.pump(batches=offset)
        handles.append(service.submit(query))
    service.drain()
    for (query, _), handle in zip(submissions, handles):
        assert handle.results() == evaluate_star_query(query, catalog)
    # telemetry covered every admission, including queued ones
    assert len(operator.stats.latency_records) == len(submissions)


@st.composite
def update_histories(draw):
    """An initial fact load plus a sequence of commits."""
    star = _single_dim_star()
    dim_rows = [(i, i * 10) for i in range(1, 4)]
    initial = [
        (draw(st.integers(1, 3)), draw(st.integers(0, 5)), draw(st.integers(0, 50)))
        for _ in range(draw(st.integers(1, 10)))
    ]
    commits = []
    for _ in range(draw(st.integers(1, 4))):
        inserts = [
            (
                draw(st.integers(1, 3)),
                draw(st.integers(0, 5)),
                draw(st.integers(0, 50)),
            )
            for _ in range(draw(st.integers(0, 4)))
        ]
        commits.append(inserts)
    return star, dim_rows, initial, commits


@settings(max_examples=40, deadline=None)
@given(history=update_histories(), data=st.data())
def test_snapshot_queries_see_committed_prefix(history, data):
    """Property: a query tagged with snapshot k sees exactly the rows

    committed by transactions 1..k (plus the bulk load), regardless of
    how many later commits exist — evaluated through the real CJOIN
    operator with the virtual-predicate mechanism.
    """
    star, dim_rows, initial, commits = history
    catalog = Catalog()
    catalog.register_table(Table.from_rows(star.dimension("d"), dim_rows))
    fact = Table.from_rows(star.fact, initial)
    catalog.register_table(fact)
    catalog.register_star(star)
    versioned = VersionedTable(fact)
    transactions = TransactionManager()
    prefix_counts = [len(initial)]
    for inserts in commits:
        transactions.commit(versioned, inserts=inserts)
        prefix_counts.append(prefix_counts[-1] + len(inserts))

    snapshot_id = data.draw(
        st.integers(0, len(commits)), label="snapshot_id"
    )
    query = StarQuery.build(
        "f",
        aggregates=[AggregateSpec("count")],
        snapshot_id=snapshot_id,
    )
    operator = CJoinOperator(catalog, star, versioned_fact=versioned)
    handle = operator.submit(query)
    operator.run_until_drained()
    assert handle.results() == [(prefix_counts[snapshot_id],)]
    # cross-check against the versioned reference evaluator
    assert handle.results() == evaluate_star_query(
        query, catalog, versioned_fact=versioned
    )
    # and against direct visibility computation
    assert prefix_counts[snapshot_id] == len(
        versioned.visible_rows(Snapshot(snapshot_id))
    )
