"""One stats schema over every transport (docs/PROTOCOL.md section 9).

``Connection.stats()`` (local), ``RemoteConnection.stats()`` (STATS
frame over either server), ``AsyncRemoteConnection`` /
``AsyncConnectionPool.stats()`` (multiplexed STATS) must all return
the same JSON-able snapshot shape — telemetry plus the adaptive
controller's decision audit — and a protocol-v1 peer that sends STATS
anyway must get a clean ``NotSupportedError`` ERROR frame, not a dead
connection.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

import repro
from repro.client import NotSupportedError
from repro.engine import Warehouse
from repro.server import AsyncWarehouseServer, WarehouseServer, protocol

STATS_KEYS = {
    "latency", "pipeline", "service", "tuning", "backend", "autotune",
    "ingest",
}

COUNT_SQL = "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"

SERVER_CLASSES = {
    "threaded": WarehouseServer,
    "async": AsyncWarehouseServer,
}


@pytest.fixture(params=sorted(SERVER_CLASSES))
def running_server(request, tiny_star):
    catalog, star = tiny_star
    server = SERVER_CLASSES[request.param](
        Warehouse(catalog, star), owns_warehouse=True
    )
    server.start()
    try:
        yield server
    finally:
        server.stop()


def assert_stats_shape(stats: dict) -> None:
    import json

    assert set(stats) == STATS_KEYS
    json.dumps(stats)
    assert set(stats["service"]) == {
        "running", "in_flight", "queued", "max_in_flight",
        "admission_queue_depth", "idle_sleep",
    }
    assert {"enabled", "decisions"} <= set(stats["autotune"])
    assert "p95" in stats["latency"]
    assert "queries_completed" in stats["pipeline"]
    assert {
        "rows_applied", "generation", "buffer_rows", "snapshot_id",
    } <= set(stats["ingest"])


class TestLocalStats:
    def test_local_connection_stats(self, tiny_star):
        catalog, star = tiny_star
        with repro.connect(catalog=catalog, star=star) as connection:
            connection.execute(COUNT_SQL).fetchall()
            stats = connection.stats()
        assert_stats_shape(stats)
        assert stats["pipeline"]["queries_completed"] >= 1

    def test_closed_connection_rejects_stats(self, tiny_star):
        from repro.client import InterfaceError

        catalog, star = tiny_star
        connection = repro.connect(catalog=catalog, star=star)
        connection.close()
        with pytest.raises(InterfaceError):
            connection.stats()

    def test_decision_audit_flows_through_stats(self, tiny_star):
        from repro.engine.autotune import TuningPolicy
        from repro.tuning import TuningConfig

        catalog, star = tiny_star
        warehouse = Warehouse(
            catalog, star, tuning=TuningConfig(max_in_flight=4)
        )
        try:
            tuner = warehouse.enable_autotuning(
                policy=TuningPolicy(cooldown_seconds=0.0), interval=60.0
            )
            # drive one deterministic decision through the real probe
            tuner.probe = None
            decision = tuner.tick()  # idle tick; builds the streak only
            assert decision is None
            stats = warehouse.stats()
            assert stats["autotune"]["enabled"]
            # decisions (possibly empty) are dicts, JSON-able
            for entry in stats["autotune"]["decisions"]:
                assert {"rule", "signals", "action", "applied"} <= set(entry)
        finally:
            warehouse.close()


class TestRemoteStats:
    def test_remote_matches_local_schema(self, running_server):
        with repro.connect(running_server.url) as connection:
            connection.execute(COUNT_SQL).fetchall()
            stats = connection.stats()
        assert_stats_shape(stats)
        assert stats["pipeline"]["queries_completed"] >= 1

    def test_v1_session_gets_a_clean_error_and_keeps_serving(
        self, running_server
    ):
        host, port = running_server.address
        sock = socket.create_connection((host, port), timeout=10.0)
        reader = sock.makefile("rb")
        try:
            sock.sendall(
                protocol.encode_frame(
                    {"type": protocol.HELLO, "version": 1}
                )
            )
            hello = protocol.read_frame(reader)
            assert hello["type"] == protocol.HELLO_OK
            assert hello["version"] == 1
            sock.sendall(protocol.encode_frame({"type": protocol.STATS}))
            reply = protocol.read_frame(reader)
            assert reply["type"] == protocol.ERROR
            assert reply["error"]["class"] == "NotSupportedError"
            assert "version 2" in reply["error"]["message"]
            # the connection survives: a later EXECUTE still answers
            sock.sendall(
                protocol.encode_frame(
                    {"type": protocol.EXECUTE, "sql": COUNT_SQL}
                )
            )
            assert protocol.read_frame(reader)["type"] == protocol.EXECUTE_OK
        finally:
            reader.close()
            sock.close()

    def test_v1_client_raises_before_the_round_trip(self, running_server):
        connection = repro.connect(running_server.url)
        try:
            # simulate a v1 negotiation: the gate fires client-side,
            # before any frame hits the wire
            connection.protocol_version = 1
            with pytest.raises(NotSupportedError, match="version 2"):
                connection.stats()
        finally:
            connection.protocol_version = 2
            connection.close()


class TestAsyncStats:
    def test_pool_and_connection_stats(self, running_server):
        async def scenario():
            pool = await repro.connect_async(running_server.url, pool_size=2)
            try:
                cursor = await pool.execute(COUNT_SQL)
                await cursor.fetchall()
                return await pool.stats()
            finally:
                await pool.close()

        stats = asyncio.run(scenario())
        assert_stats_shape(stats)
        assert stats["pipeline"]["queries_completed"] >= 1
