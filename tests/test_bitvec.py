"""Unit tests for the bit-vector kernel."""

import pytest

from repro import bitvec


class TestBitForQuery:
    def test_query_one_owns_lowest_bit(self):
        assert bitvec.bit_for_query(1) == 0b1

    def test_query_ids_are_one_based(self):
        assert bitvec.bit_for_query(3) == 0b100

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_non_positive_ids(self, bad):
        with pytest.raises(ValueError):
            bitvec.bit_for_query(bad)


class TestSetClearTest:
    def test_set_then_test(self):
        vector = bitvec.set_bit(0, 5)
        assert bitvec.test_bit(vector, 5)
        assert not bitvec.test_bit(vector, 4)

    def test_clear_removes_only_target(self):
        vector = bitvec.set_bit(bitvec.set_bit(0, 2), 7)
        vector = bitvec.clear_bit(vector, 2)
        assert not bitvec.test_bit(vector, 2)
        assert bitvec.test_bit(vector, 7)

    def test_set_is_idempotent(self):
        once = bitvec.set_bit(0, 4)
        assert bitvec.set_bit(once, 4) == once

    def test_clear_on_unset_bit_is_noop(self):
        vector = bitvec.set_bit(0, 1)
        assert bitvec.clear_bit(vector, 9) == vector


class TestAllOnesAndMask:
    def test_all_ones_width(self):
        assert bitvec.all_ones(4) == 0b1111

    def test_all_ones_zero_width(self):
        assert bitvec.all_ones(0) == 0

    def test_all_ones_negative_raises(self):
        with pytest.raises(ValueError):
            bitvec.all_ones(-1)

    def test_mask_drops_high_bits(self):
        assert bitvec.mask_to_width(0b11111, 3) == 0b111

    def test_mask_preserves_low_bits(self):
        assert bitvec.mask_to_width(0b101, 3) == 0b101


class TestIteration:
    def test_iterates_set_query_ids_ascending(self):
        vector = 0
        for query_id in (3, 1, 64, 65):
            vector = bitvec.set_bit(vector, query_id)
        assert list(bitvec.iter_query_ids(vector)) == [1, 3, 64, 65]

    def test_empty_vector_yields_nothing(self):
        assert list(bitvec.iter_query_ids(bitvec.EMPTY)) == []

    def test_popcount_matches_iteration(self):
        vector = bitvec.from_string("1011001")
        assert bitvec.popcount(vector) == len(
            list(bitvec.iter_query_ids(vector))
        )


class TestStringRoundtrip:
    def test_to_string_least_significant_first(self):
        assert bitvec.to_string(0b101, width=4) == "1010"

    def test_roundtrip(self):
        text = "0110010001"
        assert bitvec.to_string(bitvec.from_string(text), len(text)) == text

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            bitvec.from_string("01x1")


class TestBulkOperations:
    """The batched fast path's primitives (DESIGN.md section 5)."""

    def test_or_reduce(self):
        assert bitvec.or_reduce([0b001, 0b100, 0b001]) == 0b101
        assert bitvec.or_reduce([]) == bitvec.EMPTY

    def test_or_reduce_at_subset(self):
        vectors = [0b001, 0b010, 0b100]
        assert bitvec.or_reduce_at(vectors, [0, 2]) == 0b101
        assert bitvec.or_reduce_at(vectors, []) == bitvec.EMPTY

    def test_bulk_and_elementwise(self):
        assert bitvec.bulk_and([0b11, 0b10], [0b01, 0b11]) == [0b01, 0b10]

    def test_bulk_and_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            bitvec.bulk_and([0b1], [0b1, 0b1])

    def test_bulk_popcount(self):
        assert bitvec.bulk_popcount([0b101, 0b11, 0]) == 4

    def test_pack_and_iter_positions_roundtrip(self):
        positions = [0, 3, 7, 70]
        mask = bitvec.pack_positions(positions)
        assert list(bitvec.iter_set_positions(mask)) == positions
        assert bitvec.pack_positions([]) == bitvec.EMPTY

    def test_set_positions_are_zero_based(self):
        # row slots, unlike iter_query_ids' 1-based query ids
        mask = bitvec.pack_positions([0])
        assert list(bitvec.iter_set_positions(mask)) == [0]
        assert list(bitvec.iter_query_ids(mask)) == [1]
