"""Tests for the analytic performance models and the closed-loop sim."""

import pytest

from repro.errors import BenchmarkError
from repro.sim.baseline_model import BaselinePerfModel, SystemProfile
from repro.sim.cjoin_model import CJoinPerfModel, StageLayout
from repro.sim.concurrency import ClosedLoopSimulator
from repro.sim.costs import CostModel, WorkloadShape
from repro.sim.hardware import HardwareModel


@pytest.fixture(scope="module")
def shape100():
    return WorkloadShape.from_scale_factor(100)


@pytest.fixture(scope="module")
def cjoin():
    return CJoinPerfModel()


class TestWorkloadShape:
    def test_follows_ssb_scaling(self):
        shape = WorkloadShape.from_scale_factor(1)
        assert shape.fact_rows == 6_000_000
        assert shape.dimension_rows == 30_000 + 2_000 + 200_000 + 2556


class TestCostModel:
    def test_and_cost_grows_with_word_count(self):
        costs = CostModel()
        assert costs.and_us(64) == costs.and_us(1)
        assert costs.and_us(65) == 2 * costs.and_us(1)
        assert costs.and_us(256) == 4 * costs.and_us(1)

    def test_and_cost_rejects_zero(self):
        with pytest.raises(BenchmarkError):
            CostModel().and_us(0)

    def test_probe_cost_grows_with_selectivity(self, shape100):
        costs = CostModel()
        hardware = HardwareModel()
        assert costs.probe_us(shape100, 0.001, hardware) < costs.probe_us(
            shape100, 0.1, hardware
        )

    def test_submission_matches_paper_table2(self, shape100):
        """The calibration target: 1.6 / 2.4 / 11.6 seconds."""
        costs = CostModel()
        for s, expected in [(0.001, 1.6), (0.01, 2.4), (0.1, 11.6)]:
            assert costs.submission_seconds(shape100, s) == pytest.approx(
                expected, rel=0.25
            )

    def test_submission_matches_paper_table3(self):
        """Calibration target: 0.4 / 0.7 / 2.4 seconds across sf."""
        costs = CostModel()
        for sf, expected in [(1, 0.4), (10, 0.7), (100, 2.4)]:
            shape = WorkloadShape.from_scale_factor(sf)
            assert costs.submission_seconds(shape, 0.01) == pytest.approx(
                expected, rel=0.30
            )


class TestCJoinModel:
    def test_response_flat_until_cpu_binds(self, cjoin, shape100):
        r1 = cjoin.response_seconds(shape100, 1, 0.01)
        r128 = cjoin.response_seconds(shape100, 128, 0.01)
        r256 = cjoin.response_seconds(shape100, 256, 0.01)
        assert r128 / r1 < 1.05
        assert r256 / r1 <= 1.30  # the paper's headline predictability claim

    def test_throughput_linear_then_sublinear(self, cjoin, shape100):
        t1 = cjoin.throughput_qph(shape100, 1, 0.01)
        t128 = cjoin.throughput_qph(shape100, 128, 0.01)
        t256 = cjoin.throughput_qph(shape100, 256, 0.01)
        assert t128 / t1 == pytest.approx(128, rel=0.1)
        assert 1.0 < t256 / t128 < 2.0

    def test_admission_caps_throughput(self, cjoin):
        """At tiny scale the serialized admission rate is the limit."""
        shape = WorkloadShape.from_scale_factor(1)
        throughput = cjoin.throughput_qph(shape, 256, 0.01)
        cap = 3600 / cjoin.submission_seconds(shape, 0.01)
        assert throughput == pytest.approx(cap)

    def test_horizontal_beats_vertical(self, cjoin, shape100):
        horizontal = cjoin.throughput_qph(
            shape100, 128, 0.01, StageLayout.horizontal(5)
        )
        vertical = cjoin.throughput_qph(
            shape100, 128, 0.01, StageLayout.vertical(5, 4)
        )
        assert horizontal > vertical

    def test_hybrid_between_extremes(self, cjoin, shape100):
        horizontal = cjoin.throughput_qph(
            shape100, 128, 0.01, StageLayout.horizontal(4)
        )
        vertical = cjoin.throughput_qph(
            shape100, 128, 0.01, StageLayout.vertical(4, 4)
        )
        hybrid = cjoin.throughput_qph(
            shape100, 128, 0.01, StageLayout.hybrid(4, (2, 2))
        )
        assert vertical <= hybrid <= horizontal

    def test_vertical_needs_enough_threads(self):
        with pytest.raises(BenchmarkError):
            StageLayout.vertical(2, 4)

    def test_hybrid_box_coverage_checked(self, cjoin, shape100):
        with pytest.raises(BenchmarkError):
            cjoin.cycle_seconds(
                shape100, 1, 0.01, StageLayout.hybrid(4, (1, 1))
            )


class TestBaselineModel:
    def test_contention_monotone(self, shape100):
        model = BaselinePerfModel(SystemProfile.system_x())
        values = [model.contention(n) for n in (1, 32, 128, 256)]
        assert values == sorted(values)
        assert values[0] == 1.0

    def test_postgresql_degrades_faster(self, shape100):
        x = BaselinePerfModel(SystemProfile.system_x())
        pg = BaselinePerfModel(SystemProfile.postgresql())
        x_growth = x.response_seconds(shape100, 256, 0.01) / x.response_seconds(
            shape100, 1, 0.01
        )
        pg_growth = pg.response_seconds(
            shape100, 256, 0.01
        ) / pg.response_seconds(shape100, 1, 0.01)
        assert pg_growth > x_growth > 5

    def test_throughput_peaks_then_declines(self, shape100):
        model = BaselinePerfModel(SystemProfile.system_x())
        curve = [
            model.throughput_qph(shape100, n, 0.01)
            for n in (1, 16, 32, 64, 128, 256)
        ]
        peak_index = curve.index(max(curve))
        assert 0 < peak_index < len(curve) - 1  # interior peak

    def test_ram_resident_data_has_no_scan_contention(self):
        shape = WorkloadShape.from_scale_factor(1)  # ~1GB, fits in 8GB
        model = BaselinePerfModel(SystemProfile.system_x())
        r1 = model.response_seconds(shape, 1, 0.01)
        r64 = model.response_seconds(shape, 64, 0.01)
        # growth comes only from CPU sharing (64/8 = 8x), not seeks
        assert r64 / r1 < 10

    def test_memory_overcommit_triggers_thrash(self, shape100):
        model = BaselinePerfModel(SystemProfile.postgresql())
        calm = model.response_seconds(shape100, 128, 0.01)
        thrash = model.response_seconds(shape100, 128, 0.1)
        assert model.memory_overcommit(shape100, 128, 0.1) > 1.0
        assert thrash > 2 * calm


class TestClosedLoopSimulator:
    def _simulator(self, shape):
        return ClosedLoopSimulator(CJoinPerfModel(), shape, 0.01, seed=1)

    def test_steady_state_response_is_stable(self, shape100):
        simulator = self._simulator(shape100)
        records = simulator.run(32, total_queries=128, measure_from=64)
        mean = simulator.mean_response(records)
        stdev = simulator.stdev_response(records)
        assert stdev / mean < 0.01  # the paper's ~0.5% deviation claim

    def test_throughput_matches_analytic_model(self, shape100):
        simulator = self._simulator(shape100)
        records = simulator.run(64, total_queries=256, measure_from=64)
        simulated = simulator.throughput_qph(records)
        analytic = CJoinPerfModel().throughput_qph(shape100, 64, 0.01)
        assert simulated == pytest.approx(analytic, rel=0.15)

    def test_submission_wait_included_in_response(self, shape100):
        simulator = self._simulator(shape100)
        records = simulator.run(8, total_queries=32, measure_from=8)
        for record in records:
            assert record.submission_seconds >= 0
            assert record.response_seconds > record.submission_seconds

    def test_bad_arguments(self, shape100):
        simulator = self._simulator(shape100)
        with pytest.raises(BenchmarkError):
            simulator.run(0, 10)
        with pytest.raises(BenchmarkError):
            ClosedLoopSimulator(CJoinPerfModel(), shape100, 0.01, jitter=-1)


class TestBenchExperiments:
    @pytest.mark.parametrize(
        "experiment_id",
        ["fig4", "fig5", "fig6", "fig7", "fig8", "tab1", "tab2", "tab3"],
    )
    def test_every_experiment_reproduces_its_shape(self, experiment_id):
        from repro.bench import run_experiment

        result = run_experiment(experiment_id)
        failed = [d for d, passed in result.checks if not passed]
        assert not failed, f"{experiment_id}: {failed}"

    def test_unknown_experiment(self):
        from repro.bench import run_experiment

        with pytest.raises(BenchmarkError):
            run_experiment("fig99")

    def test_reporting_renders(self):
        from repro.bench import format_comparison, format_series, run_experiment

        result = run_experiment("tab1")
        assert "Table 1" in format_series(result)
        comparison = format_comparison(result)
        assert "measured" in comparison and "paper" in comparison
        assert "PASS" in comparison
