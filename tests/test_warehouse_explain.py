"""Tests for the warehouse EXPLAIN facility."""

from repro.engine import Warehouse


def test_explain_reports_routing_and_selectivities(tiny_star):
    catalog, star = tiny_star
    warehouse = Warehouse(catalog, star)
    report = warehouse.explain_sql(
        "SELECT COUNT(*) FROM sales, store "
        "WHERE f_store = s_id AND s_city = 'lyon' AND f_qty > 2"
    )
    assert "routing: cjoin" in report
    assert "dimension store: selects 33.3% of 3 rows" in report
    assert "fact predicate evaluated in the Preprocessor" in report
    assert "pipeline idle" in report


def test_explain_reports_sharing_with_in_flight_queries(tiny_star):
    catalog, star = tiny_star
    warehouse = Warehouse(catalog, star)
    warehouse.submit_sql(
        "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"
    )
    report = warehouse.explain_sql(
        "SELECT COUNT(*) FROM sales, product WHERE f_product = p_id"
    )
    assert "would share the continuous scan with 1 in-flight query" in report
    warehouse.run()  # drain so the fixture-shared state is clean
