"""CI gates for the repo's tooling layer.

Wires two standalone entry points into the tier-1 suite:

* ``scripts/check_docs_refs.py`` — every DESIGN.md / EXPERIMENTS.md /
  README.md / PAPER.md / docs-tree citation in ``src/`` and ``docs/``
  must resolve to a real file and a real numbered section;
* ``python -m repro.bench --smoke`` — the fast experiment gate (all
  shape checks plus the tuple-vs-batched real-pipeline sanity pass).
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_script(name: str):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "scripts" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_check_docs_refs():
    return _load_script("check_docs_refs")


def test_docs_exist():
    for name in (
        "DESIGN.md",
        "EXPERIMENTS.md",
        "README.md",
        "PAPER.md",
        "docs/ARCHITECTURE.md",
        "docs/PROTOCOL.md",
    ):
        assert (REPO_ROOT / name).is_file(), f"{name} is missing"


def test_doc_citations_resolve():
    checker = _load_check_docs_refs()
    problems = checker.check(REPO_ROOT)
    assert not problems, "\n".join(problems)


def test_docs_refs_checker_flags_dangling_citation(tmp_path):
    """The checker actually fails on a dangling section citation."""
    checker = _load_check_docs_refs()
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text(
        '"""See DESIGN.md section 99."""\n', encoding="utf-8"
    )
    (tmp_path / "DESIGN.md").write_text("## 1. Intro\n", encoding="utf-8")
    problems = checker.check(tmp_path)
    assert len(problems) == 1 and "section 99" in problems[0]
    (tmp_path / "src" / "mod.py").write_text(
        '"""See EXPERIMENTS.md."""\n', encoding="utf-8"
    )
    problems = checker.check(tmp_path)
    assert len(problems) == 1 and "missing file" in problems[0]


def test_docs_refs_checker_covers_the_docs_tree(tmp_path):
    """Citations of and inside docs/ files are checked too: bare
    ARCHITECTURE.md / PROTOCOL.md names resolve into docs/, and the
    docs themselves are scanned as citation sources."""
    checker = _load_check_docs_refs()
    (tmp_path / "src").mkdir()
    (tmp_path / "docs").mkdir()
    (tmp_path / "DESIGN.md").write_text("## 1. Intro\n", encoding="utf-8")
    (tmp_path / "src" / "mod.py").write_text(
        '"""See docs/PROTOCOL.md section 2 and ARCHITECTURE.md."""\n',
        encoding="utf-8",
    )
    # docs/PROTOCOL.md missing entirely, ARCHITECTURE.md present but
    # cited from within the docs tree with a dangling section number
    (tmp_path / "docs" / "ARCHITECTURE.md").write_text(
        "## 1. Map\nSee DESIGN.md section 7.\n", encoding="utf-8"
    )
    problems = checker.check(tmp_path)
    assert len(problems) == 2
    assert any(
        "docs/PROTOCOL.md" in problem and "missing file" in problem
        for problem in problems
    )
    assert any(
        "ARCHITECTURE.md" in problem and "section 7" in problem
        for problem in problems
    )
    # fixing both clears the report
    (tmp_path / "docs" / "PROTOCOL.md").write_text(
        "## 2. Version negotiation\n", encoding="utf-8"
    )
    (tmp_path / "docs" / "ARCHITECTURE.md").write_text(
        "## 1. Map\nSee DESIGN.md section 1.\n", encoding="utf-8"
    )
    assert checker.check(tmp_path) == []


def test_public_api_surface_matches_snapshot():
    """The committed snapshot is current: API drift fails the gate."""
    checker = _load_script("check_public_api")
    problems = checker.check()
    assert not problems, "\n".join(problems)


def test_public_api_checker_flags_drift():
    """The checker actually fails on removals, additions, and
    signature changes."""
    checker = _load_script("check_public_api")
    observed = checker.current_surface()
    snapshot = checker.current_surface()
    del snapshot["repro"]["Warehouse"]          # addition vs snapshot
    snapshot["repro"]["Ghost"] = {"kind": "class", "members": {}}
    snapshot["repro.client"]["connect"] = {
        "kind": "function",
        "signature": "(somewhere_else)",
    }
    problems = checker.compare(snapshot, observed)
    assert any("Warehouse: added" in problem for problem in problems)
    assert any("Ghost: removed" in problem for problem in problems)
    assert any(
        "connect: signature changed" in problem for problem in problems
    )


def test_public_api_checker_notes_deprecated_not_missing():
    """A symbol that moved behind a ``__deprecated__`` shim is reported
    as a note, never as a removed-symbol failure."""
    checker = _load_script("check_public_api")
    observed = checker.current_surface()
    # the live surface carries the shimmed repro.server constant
    entry = observed["repro.server"]["DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION"]
    assert entry["kind"] == "deprecated"
    assert "repro.tuning" in entry["replacement"]
    # against a snapshot that still records it as a plain constant,
    # the drift is a note, not a problem
    snapshot = checker.current_surface()
    snapshot["repro.server"]["DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION"] = {
        "kind": "constant",
        "type": "int",
    }
    notes: list[str] = []
    problems = checker.compare(snapshot, observed, notes)
    assert problems == []
    assert len(notes) == 1 and "deprecated" in notes[0]
    # the two-argument call (no notes sink) stays compatible
    assert checker.compare(snapshot, observed) == []


def test_deprecated_server_constant_still_importable():
    """The PEP 562 shim serves the moved constant with a warning."""
    import warnings

    import repro.server
    from repro.tuning import DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = repro.server.DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION
    assert value == DEFAULT_MAX_IN_FLIGHT_PER_CONNECTION
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )
    try:
        repro.server.definitely_not_an_export
    except AttributeError as error:
        assert "definitely_not_an_export" in str(error)
    else:
        raise AssertionError("unknown attribute should still raise")


def test_public_api_checker_reports_missing_snapshot(tmp_path):
    checker = _load_script("check_public_api")
    problems = checker.check(tmp_path / "nope.json")
    assert len(problems) == 1 and "--update" in problems[0]


def test_bench_smoke_passes(capsys):
    from repro.bench.__main__ import main

    assert main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "pipeline smoke" in out and "ok" in out


def test_bench_smoke_unknown_id_rejected():
    from repro.bench.__main__ import main

    assert main(["--smoke", "nope"]) == 2
