"""Tests for the operator status report."""

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import StarQuery


def test_status_report_reflects_pipeline_state(tiny_star):
    catalog, star = tiny_star
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(batch_size=4)
    )
    report = operator.status_report()
    assert "0 queries in flight" in report
    assert "(none installed)" in report

    query = StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", "lyon")},
        aggregates=[AggregateSpec("count")],
        label="lyon-count",
    )
    handle = operator.submit(query)
    operator.executor.step()
    report = operator.status_report()
    assert "1 query in flight" in report
    assert "lyon-count" in report
    assert "store(drop" in report
    assert "probes/tuple" in report

    operator.run_until_drained()
    report = operator.status_report()
    assert "0 queries in flight" in report
    assert handle.done
