"""The TCP warehouse servers and the socket-backed client (ISSUE 5/6).

Covers what `tests/test_client_api.py` (whose shared `connection`
fixture already runs every cursor-semantics test over all transports)
cannot: server lifecycle, per-connection admission and fairness, the
deterministic cancel-while-queued path, remote executemany atomicity
observed server-side, URL validation, and the 8-client soak —
concurrent execute/stream/cancel against one server with results
reference-equal to an in-process drain and no leaked threads or
sockets afterwards.  The `server_class` fixture runs every
server-facing test against BOTH the threaded `WarehouseServer` and
the asyncio `AsyncWarehouseServer` (ISSUE 6): the two must be
observably identical from a v1/v2 sync client.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.client import (
    InterfaceError,
    OperationalError,
    ProgrammingError,
    RemoteConnection,
)
from repro.client.remote import parse_url
from repro.engine import Warehouse
from repro.server import AsyncWarehouseServer, WarehouseServer
from repro.sql.render import render_star_query

COUNT_SQL = "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"

SERVER_CLASSES = {
    "threaded": WarehouseServer,
    "async": AsyncWarehouseServer,
}


@pytest.fixture(params=sorted(SERVER_CLASSES))
def server_class(request):
    """Both server flavors, asserted interchangeable (ISSUE 6)."""
    return SERVER_CLASSES[request.param]


def wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestServerLifecycle:
    def test_start_stop_leaves_no_threads_or_sockets(
        self, tiny_star, server_class
    ):
        catalog, star = tiny_star
        before = set(threading.enumerate())
        server = server_class(Warehouse(catalog, star), owns_warehouse=True)
        server.start()
        assert server.running
        assert server.url.startswith("tcp://127.0.0.1:")
        server.stop()
        assert not server.running
        assert server.warehouse.closed
        assert set(threading.enumerate()) == before
        server.stop()  # idempotent

    def test_double_start_raises(self, tiny_star, server_class):
        catalog, star = tiny_star
        with server_class(
            Warehouse(catalog, star), owns_warehouse=True
        ) as server:
            with pytest.raises(InterfaceError, match="already running"):
                server.start()

    def test_address_before_start_raises(self, tiny_star, server_class):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        server = server_class(warehouse)
        with pytest.raises(InterfaceError, match="not started"):
            server.address
        warehouse.close()

    def test_per_connection_bound_is_validated(
        self, tiny_star, server_class
    ):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        with pytest.raises(InterfaceError, match=">= 1"):
            server_class(warehouse, max_in_flight_per_connection=0)
        warehouse.close()

    def test_stop_disconnects_clients(self, tiny_star, server_class):
        catalog, star = tiny_star
        server = server_class(
            Warehouse(catalog, star), owns_warehouse=True
        ).start()
        conn = repro.connect(server.url)
        assert conn.execute(COUNT_SQL).fetchall() == [(12,)]
        server.stop()
        with pytest.raises(OperationalError):
            conn.execute(COUNT_SQL)
        conn.close()  # no error: teardown is best-effort

    def test_unreachable_server_raises_operational_error(self):
        # bind-then-close guarantees a port nobody is listening on
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OperationalError, match="connect"):
            repro.connect(f"tcp://127.0.0.1:{port}")


class TestConnectDispatch:
    def test_parse_url(self):
        assert parse_url("tcp://127.0.0.1:5477") == ("127.0.0.1", 5477)
        for bad in ("http://x:1", "tcp://", "tcp://host", "tcp://host:x"):
            with pytest.raises(InterfaceError):
                parse_url(bad)

    def test_url_and_build_kwargs_are_mutually_exclusive(self):
        with pytest.raises(InterfaceError, match="not both"):
            repro.connect("tcp://127.0.0.1:1", scale_factor=0.001)

    def test_closed_remote_connection_rejects_everything(
        self, tiny_star, server_class
    ):
        catalog, star = tiny_star
        with server_class(
            Warehouse(catalog, star), owns_warehouse=True
        ) as server:
            conn = repro.connect(server.url)
            assert isinstance(conn, RemoteConnection)
            cursor = conn.cursor()
            conn.close()
            assert conn.closed
            with pytest.raises(InterfaceError, match="closed"):
                conn.cursor()
            with pytest.raises(InterfaceError, match="closed"):
                cursor.execute(COUNT_SQL)
            conn.close()  # idempotent


class TestPerConnectionAdmission:
    """The fairness layer: one connection's statements beyond its bound
    wait in its own SubmissionQueue, not in the shared pipeline."""

    @pytest.fixture
    def offline_server(self, tiny_star, server_class):
        """Process-backend server: queries only complete when a FETCH
        drives the drain, so queue states are fully deterministic."""
        catalog, star = tiny_star
        with server_class(
            Warehouse(catalog, star, backend="process", workers=2),
            owns_warehouse=True,
            max_in_flight_per_connection=1,
        ) as server:
            yield server

    def test_cancel_while_queued_per_connection(self, offline_server):
        with repro.connect(offline_server.url) as conn:
            first = conn.execute(COUNT_SQL)  # holds the connection slot
            queued = conn.execute(COUNT_SQL)  # parks in the FIFO
            assert queued.cancel() == 1  # dropped in place
            with pytest.raises(OperationalError, match="cancelled"):
                queued.fetchall()
            assert first.fetchall() == [(12,)]  # survivor unaffected

    def test_queued_statements_complete_in_order(self, offline_server):
        with repro.connect(offline_server.url) as conn:
            cursors = [
                conn.execute(
                    "SELECT COUNT(*) FROM sales, store "
                    "WHERE f_store = s_id AND s_city = ?",
                    (city,),
                )
                for city in ("lyon", "paris", "nice")
            ]
            # fetching the LAST one forces the pump to move the whole
            # FIFO through the warehouse
            assert cursors[-1].fetchall() == [(3,)]
            assert cursors[0].fetchall() == [(5,)]
            assert cursors[1].fetchall() == [(4,)]

    def test_flooding_client_does_not_starve_another(self, offline_server):
        with repro.connect(offline_server.url) as flooder:
            with repro.connect(offline_server.url) as polite:
                hogs = [flooder.execute(COUNT_SQL) for _ in range(5)]
                # the flooder holds 1 slot + 4 queued statements; the
                # polite client admits and completes immediately
                assert polite.execute(COUNT_SQL).fetchall() == [(12,)]
                # and the flooder's backlog still drains on demand
                assert [hog.fetchall() for hog in hogs] == [[(12,)]] * 5

    def test_partial_polling_alone_pumps_the_queue(self, server_class):
        """Regression: a client that never issues a blocking FETCH must
        still see its queued statements admitted — every frame pumps
        the per-connection FIFO, not just a blocking fetch's wait."""
        server = server_class(
            Warehouse.from_ssb(
                scale_factor=0.002, seed=31, execution="batched"
            ),
            owns_warehouse=True,
            max_in_flight_per_connection=1,
        ).start()
        try:
            with repro.connect(server.url) as conn:
                count_sql = (
                    "SELECT COUNT(*) FROM lineorder, date "
                    "WHERE lo_orderdate = d_datekey"
                )
                first = conn.execute(count_sql)
                queued = conn.execute(count_sql)  # parks if first is live
                # poll ONLY partial-mode fetches: once the first query
                # completes, a poll must pump the queued one into the
                # warehouse, whose driver then completes it
                assert wait_until(
                    lambda: queued.rows_so_far() != [], timeout=60.0
                ), "queued statement was never admitted via polling"
                assert first.fetchall() == queued.fetchall()
        finally:
            server.stop()

    def test_vanished_connection_frees_its_queries(self, offline_server):
        conn = repro.connect(offline_server.url)
        conn.execute(COUNT_SQL)
        conn.execute(COUNT_SQL)
        # drop the socket without CLOSE: the handler teardown must
        # cancel both (one in-warehouse, one queued per-connection)
        conn._abandon_socket()
        assert wait_until(lambda: offline_server.connection_count == 0)
        warehouse = offline_server.warehouse
        assert wait_until(
            lambda: all(
                submission.done or submission.cancelled
                for submission in warehouse.submissions
            )
        )


class TestRemoteExecutemany:
    def test_atomic_over_bad_bindings_server_side(
        self, tiny_star, server_class
    ):
        catalog, star = tiny_star
        with server_class(
            Warehouse(catalog, star), owns_warehouse=True
        ) as server:
            with repro.connect(server.url) as conn:
                before = len(server.warehouse.submissions)
                with pytest.raises(ProgrammingError):
                    conn.executemany(
                        "SELECT COUNT(*) FROM sales, store "
                        "WHERE f_store = s_id AND s_city = ?",
                        [("lyon",), ("paris", "extra")],
                    )
                # the server bound every set before submitting any:
                # the good first binding left no orphan behind
                assert len(server.warehouse.submissions) == before


class TestSoak:
    """ISSUE 5 satellite: 8 socket clients x execute/stream/cancel."""

    CLIENTS = 8
    QUERIES_PER_CLIENT = 3

    def test_eight_concurrent_clients(
        self, ssb_small, ssb_workload, server_class
    ):
        catalog, star = ssb_small
        sqls = [render_star_query(query, star) for query in ssb_workload]
        # reference: a plain in-process batch drain
        drain = Warehouse(catalog, star, execution="batched")
        drained = [drain.submit(query) for query in ssb_workload]
        drain.run()
        expected = [handle.results() for handle in drained]
        drain.close()

        before = set(threading.enumerate())
        errors: list[BaseException] = []
        outputs: dict[int, list[list[tuple]]] = {}

        def client(index: int, url: str) -> None:
            try:
                with repro.connect(url) as conn:
                    picks = [
                        (index + offset) % len(sqls)
                        for offset in range(self.QUERIES_PER_CLIENT)
                    ]
                    cursors = [conn.execute(sqls[pick]) for pick in picks]
                    # a long statement to watch and abandon mid-scan
                    doomed = conn.execute(
                        "SELECT COUNT(*) FROM lineorder, date "
                        "WHERE lo_orderdate = d_datekey"
                    )
                    doomed.rows_so_far()  # never blocks
                    doomed.cancel()  # either cancels or lost the race
                    collected = []
                    for position, cursor in enumerate(cursors):
                        if position % 2:
                            collected.append(list(cursor))  # iteration
                        else:
                            collected.append(cursor.fetchall())
                    outputs[index] = collected
                    if doomed.cancel():  # idempotent: True if cancelled
                        with pytest.raises(OperationalError):
                            doomed.fetchall()
                    else:
                        doomed.fetchall()  # completed first: rows stand
            except BaseException as error:  # surfaced below
                errors.append(error)

        with server_class(
            Warehouse(catalog, star, execution="batched")
        ) as server:
            threads = [
                threading.Thread(target=client, args=(index, server.url))
                for index in range(self.CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120.0)
            assert not any(thread.is_alive() for thread in threads)
            assert not errors, errors
            # every client's rows are reference-equal to the drain
            for index in range(self.CLIENTS):
                picks = [
                    (index + offset) % len(sqls)
                    for offset in range(self.QUERIES_PER_CLIENT)
                ]
                assert outputs[index] == [expected[pick] for pick in picks]
            # no leaked sockets: every connection tore down
            assert wait_until(lambda: server.connection_count == 0)
            server.warehouse.close()
        # no leaked threads once the server stopped
        assert wait_until(
            lambda: set(threading.enumerate()) - before == set()
        )
