"""Unit tests for one-shot and continuous scans."""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.scan import ContinuousScan, TableScan
from repro.storage.table import Table


def _table(row_count=10, rows_per_page=3):
    schema = TableSchema("t", [Column("k", DataType.INT)])
    return Table.from_rows(
        schema, [(i,) for i in range(row_count)], rows_per_page
    )


class TestTableScan:
    def test_yields_all_rows_in_order(self):
        table = _table(7)
        scan = TableScan(table, BufferPool(16))
        assert list(scan) == [(i,) for i in range(7)]

    def test_positions_are_row_ordinals(self):
        table = _table(5)
        scan = TableScan(table, BufferPool(16))
        assert list(scan.iter_with_positions()) == [
            (i, (i,)) for i in range(5)
        ]

    def test_charges_one_read_per_page(self):
        stats = IOStats()
        table = _table(9, rows_per_page=3)
        list(TableScan(table, BufferPool(16, stats)))
        assert stats.disk_reads == 3
        assert stats.sequential_fraction == pytest.approx(2 / 3)  # first is random


class TestContinuousScan:
    def test_wraps_in_identical_order(self):
        table = _table(5)
        scan = ContinuousScan(table, BufferPool(16))
        first_cycle = [scan.next() for _ in range(5)]
        second_cycle = [scan.next() for _ in range(5)]
        assert first_cycle == second_cycle
        assert [pos for pos, _ in first_cycle] == list(range(5))

    def test_next_position_tracks_cursor(self):
        table = _table(3)
        scan = ContinuousScan(table, BufferPool(16))
        assert scan.next_position == 0
        scan.next()
        assert scan.next_position == 1
        scan.next()
        scan.next()
        assert scan.next_position == 0  # wrapped

    def test_empty_table_returns_none(self):
        table = _table(0)
        scan = ContinuousScan(table, BufferPool(16))
        assert scan.next() is None

    def test_rows_appended_mid_cycle_are_reached(self):
        table = _table(3)
        scan = ContinuousScan(table, BufferPool(16))
        scan.next()
        table.insert((99,))
        positions = [scan.next()[0] for _ in range(3)]
        assert positions == [1, 2, 3]  # the appended row extends the cycle

    def test_cycles_completed(self):
        table = _table(4)
        scan = ContinuousScan(table, BufferPool(16))
        for _ in range(10):
            scan.next()
        assert scan.cycles_completed == pytest.approx(2.5)

    def test_io_stays_sequential_across_cycles(self):
        stats = IOStats()
        table = _table(12, rows_per_page=3)
        scan = ContinuousScan(table, BufferPool(2, stats))
        for _ in range(24):  # two full cycles, pool smaller than table
            scan.next()
        # wrap-around reads (page 0 after page 3) are the only randoms
        assert stats.random_reads <= 2
        assert stats.sequential_reads >= 6
