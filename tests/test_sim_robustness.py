"""Robustness of the reproduction's qualitative claims.

The shape claims (who wins, crossovers, flat-vs-degrading response)
must not hinge on the exact calibration constants — otherwise the
"reproduction" would just be curve fitting.  These tests perturb every
cost-model constant by ±20% and re-assert the core shapes.
"""

import dataclasses

import pytest

from repro.sim.baseline_model import BaselinePerfModel, SystemProfile
from repro.sim.cjoin_model import CJoinPerfModel
from repro.sim.costs import CostModel, WorkloadShape

PERTURBATIONS = (0.8, 1.2)


def _scaled_cost_model(factor: float) -> CostModel:
    base = CostModel()
    return dataclasses.replace(
        base,
        preprocess_us=base.preprocess_us * factor,
        probe_base_us=base.probe_base_us * factor,
        probe_cache_penalty_us=base.probe_cache_penalty_us * factor,
        and_word_us=base.and_word_us * factor,
        transfer_us=base.transfer_us * factor,
        admit_fixed_s=base.admit_fixed_s * factor,
        admit_eval_us=base.admit_eval_us * factor,
        admit_insert_us=base.admit_insert_us * factor,
    )


@pytest.fixture(scope="module")
def shape100():
    return WorkloadShape.from_scale_factor(100)


@pytest.mark.parametrize("factor", PERTURBATIONS)
class TestShapeRobustness:
    def test_cjoin_response_stays_predictable(self, shape100, factor):
        model = CJoinPerfModel(costs=_scaled_cost_model(factor))
        r1 = model.response_seconds(shape100, 1, 0.01)
        r256 = model.response_seconds(shape100, 256, 0.01)
        # widened from the calibrated 1.30 bound, but still a far cry
        # from the comparators' order-of-magnitude blowups
        assert r256 / r1 < 2.0

    def test_comparators_still_degrade_superlinearly(self, shape100, factor):
        for profile in (SystemProfile.system_x(), SystemProfile.postgresql()):
            model = BaselinePerfModel(
                profile, costs=_scaled_cost_model(factor)
            )
            growth = model.response_seconds(
                shape100, 256, 0.01
            ) / model.response_seconds(shape100, 1, 0.01)
            assert growth > 5.0

    def test_cjoin_still_wins_big_at_high_concurrency(self, shape100, factor):
        costs = _scaled_cost_model(factor)
        cjoin = CJoinPerfModel(costs=costs)
        system_x = BaselinePerfModel(SystemProfile.system_x(), costs=costs)
        ratio = cjoin.throughput_qph(shape100, 256, 0.01) / (
            system_x.throughput_qph(shape100, 256, 0.01)
        )
        assert ratio > 5.0

    def test_comparator_throughput_still_peaks_early(self, shape100, factor):
        model = BaselinePerfModel(
            SystemProfile.system_x(), costs=_scaled_cost_model(factor)
        )
        curve = [
            model.throughput_qph(shape100, n, 0.01)
            for n in (1, 16, 32, 64, 128, 256)
        ]
        assert curve.index(max(curve)) < len(curve) - 1

    def test_submission_still_independent_of_n(self, shape100, factor):
        model = CJoinPerfModel(costs=_scaled_cost_model(factor))
        times = {
            model.submission_seconds(shape100, 0.01) for _ in (32, 64, 256)
        }
        assert len(times) == 1

    def test_small_warehouse_crossover_direction_is_stable(self, factor):
        """At sf=1 the comparison stays close (within ~3x either way):

        the crossover is a *near-tie region*, not an artifact of one
        constant."""
        costs = _scaled_cost_model(factor)
        shape = WorkloadShape.from_scale_factor(1)
        cjoin = CJoinPerfModel(costs=costs)
        system_x = BaselinePerfModel(SystemProfile.system_x(), costs=costs)
        ratio = cjoin.throughput_qph(shape, 128, 0.01) / (
            system_x.throughput_qph(shape, 128, 0.01)
        )
        assert 1 / 3 < ratio < 3
