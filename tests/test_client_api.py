"""The client session layer (DESIGN.md section 10).

Covers connect()/Connection/Cursor end to end: lifecycle and context
management, parameterized execution, fetch semantics, iteration,
description metadata, executemany fan-out, error mapping, streaming
equivalence on both backends, and the unified submission telemetry
(process and baseline routes now report latency records too).
"""

from __future__ import annotations

import threading

import pytest

import repro
from repro.client import (
    NUMBER,
    STRING,
    InterfaceError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
)
from repro.engine import Warehouse
from repro.engine.router import RoutingDecision
from repro.engine.submission import (
    ROUTE_BASELINE,
    ROUTE_PROCESS,
    ROUTE_SERVICE,
)
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from repro.sql.render import render_star_query

CITY_COUNT_SQL = (
    "SELECT COUNT(*) FROM sales, store "
    "WHERE f_store = s_id AND s_city = ?"
)
GROUPED_SQL = (
    "SELECT s_city, COUNT(*) AS orders, SUM(f_total) AS total "
    "FROM sales, store WHERE f_store = s_id GROUP BY s_city"
)


def city_query(city: str) -> StarQuery:
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[AggregateSpec("count")],
    )


@pytest.fixture(params=["local", "remote", "async"])
def connection(request, tiny_star):
    """One client session per transport: every test using this fixture
    runs three times — in-process, over the threaded TCP server, and
    over the asyncio server (ISSUE 5/6 acceptance criteria: both
    remote paths pass the same cursor-semantics tests)."""
    catalog, star = tiny_star
    if request.param == "local":
        with repro.connect(catalog=catalog, star=star) as conn:
            yield conn
    else:
        from repro.server import AsyncWarehouseServer, WarehouseServer

        server_class = (
            WarehouseServer
            if request.param == "remote"
            else AsyncWarehouseServer
        )
        with server_class(
            Warehouse(catalog, star), owns_warehouse=True
        ) as server:
            with repro.connect(server.url) as conn:
                yield conn


@pytest.fixture
def local_connection(tiny_star):
    """In-process session, for tests that introspect the warehouse."""
    catalog, star = tiny_star
    with repro.connect(catalog=catalog, star=star) as conn:
        yield conn


class TestConnectionLifecycle:
    def test_connect_starts_and_stops_the_service(self, tiny_star):
        catalog, star = tiny_star
        before = set(threading.enumerate())
        conn = repro.connect(catalog=catalog, star=star)
        assert conn.warehouse.service.running
        conn.close()
        assert not conn.warehouse.service.running
        assert conn.closed
        assert set(threading.enumerate()) == before
        conn.close()  # idempotent

    def test_connect_accepts_warehouse_keyword_alias(self, tiny_star):
        """The pre-URL parameter name keeps working as a keyword."""
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        with repro.connect(warehouse=warehouse) as conn:
            assert conn.warehouse is warehouse
        with pytest.raises(InterfaceError, match="not both"):
            repro.connect(warehouse, warehouse=warehouse)
        warehouse.close()

    def test_connect_wraps_existing_warehouse_without_closing_it(
        self, tiny_star
    ):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        with repro.connect(warehouse) as conn:
            assert conn.warehouse is warehouse
            assert warehouse.service.running
        assert not warehouse.service.running
        assert not warehouse.closed  # still usable
        assert warehouse.execute_sql(
            "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"
        ) == [(12,)]

    def test_connect_owns_built_warehouse(self, tiny_star):
        catalog, star = tiny_star
        conn = repro.connect(catalog=catalog, star=star)
        warehouse = conn.warehouse
        conn.close()
        assert warehouse.closed

    def test_warehouse_and_kwargs_are_mutually_exclusive(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        with pytest.raises(InterfaceError, match="not both"):
            repro.connect(warehouse, scale_factor=0.001)
        warehouse.close()

    def test_catalog_requires_star(self, tiny_star):
        catalog, _ = tiny_star
        with pytest.raises(InterfaceError, match="star"):
            repro.connect(catalog=catalog)

    def test_closed_connection_rejects_everything(self, tiny_star):
        catalog, star = tiny_star
        conn = repro.connect(catalog=catalog, star=star)
        cursor = conn.cursor()
        conn.close()
        with pytest.raises(InterfaceError, match="closed"):
            conn.cursor()
        with pytest.raises(InterfaceError, match="closed"):
            cursor.execute(GROUPED_SQL)

    def test_no_service_connection_drains_on_fetch(self, tiny_star):
        catalog, star = tiny_star
        with repro.connect(
            catalog=catalog, star=star, start_service=False
        ) as conn:
            assert not conn.warehouse.service.running
            rows = conn.execute(CITY_COUNT_SQL, ("lyon",)).fetchall()
            assert rows == [(5,)]

    def test_transaction_surface(self, connection):
        connection.commit()  # no-op
        with pytest.raises(NotSupportedError):
            connection.rollback()

    def test_dbapi_module_globals(self):
        from repro import client

        assert client.apilevel == "2.0"
        assert client.threadsafety == 2
        assert client.paramstyle == "qmark"


class TestCursorSemantics:
    def test_execute_returns_self_and_fetchall(self, connection):
        cursor = connection.cursor()
        assert cursor.execute(CITY_COUNT_SQL, ("lyon",)) is cursor
        assert cursor.fetchall() == [(5,)]
        assert cursor.fetchall() == []  # exhausted

    def test_fetchone_walks_then_returns_none(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        seen = []
        while (row := cursor.fetchone()) is not None:
            seen.append(row)
        assert seen == cursor._rows
        assert len(seen) == 3  # lyon, nice, paris
        assert cursor.fetchone() is None

    def test_fetchmany_chunks_with_arraysize_default(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        assert len(cursor.fetchmany()) == 1  # arraysize defaults to 1
        cursor.arraysize = 2
        assert len(cursor.fetchmany()) == 2
        assert cursor.fetchmany() == []
        with pytest.raises(InterfaceError, match=">= 0"):
            cursor.fetchmany(-1)

    def test_iteration_streams_all_rows(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        rows = list(cursor)
        assert rows == connection.execute(GROUPED_SQL).fetchall()

    def test_rowcount_before_and_after_fetch(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        assert cursor.rowcount == -1
        cursor.fetchall()
        assert cursor.rowcount == 3

    def test_description_names_and_types(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        names = [entry[0] for entry in cursor.description]
        types = [entry[1] for entry in cursor.description]
        assert names == ["s_city", "orders", "total"]
        assert types[0] == STRING
        assert types[1] == NUMBER and types[2] == NUMBER
        # unaliased aggregates get canonical names
        cursor = connection.execute(
            "SELECT COUNT(*), SUM(f_total), AVG(f_qty) FROM sales"
        )
        assert [entry[0] for entry in cursor.description] == [
            "count(*)", "sum(f_total)", "avg(f_qty)",
        ]

    def test_description_matches_row_layout(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        row = cursor.fetchone()
        assert len(row) == len(cursor.description)
        assert isinstance(row[0], str) and isinstance(row[1], int)

    def test_fetch_before_execute_raises(self, connection):
        cursor = connection.cursor()
        with pytest.raises(ProgrammingError, match="no statement"):
            cursor.fetchall()
        with pytest.raises(ProgrammingError, match="no statement"):
            cursor.rows_so_far()
        with pytest.raises(ProgrammingError, match="no statement"):
            cursor.cancel()

    def test_closed_cursor_raises(self, connection):
        cursor = connection.execute(GROUPED_SQL)
        cursor.close()
        with pytest.raises(InterfaceError, match="cursor is closed"):
            cursor.fetchall()
        cursor.close()  # idempotent

    def test_cursor_context_manager(self, connection):
        with connection.cursor() as cursor:
            cursor.execute(GROUPED_SQL)
        with pytest.raises(InterfaceError):
            cursor.fetchone()

    def test_executemany_concatenates_in_submission_order(self, connection):
        cursor = connection.executemany(
            CITY_COUNT_SQL, [("lyon",), ("paris",), ("nice",)]
        )
        assert cursor.fetchall() == [(5,), (4,), (3,)]
        assert cursor.description is not None

    def test_executemany_is_atomic_over_bad_bindings(self, local_connection):
        warehouse = local_connection.warehouse
        submissions_before = len(warehouse.submissions)
        with pytest.raises(ProgrammingError):
            local_connection.executemany(
                CITY_COUNT_SQL, [("lyon",), ("paris", "extra")]
            )
        # the good first binding was never submitted: no orphan queries
        assert len(warehouse.submissions) == submissions_before

    def test_executemany_with_no_bindings_is_an_empty_result_set(
        self, connection
    ):
        cursor = connection.executemany(CITY_COUNT_SQL, [])
        assert cursor.fetchall() == []
        assert cursor.fetchone() is None
        assert cursor.rowcount == 0
        assert cursor.rows_so_far() == []
        assert cursor.cancel() == 0

    def test_named_parameters(self, connection):
        cursor = connection.execute(
            "SELECT COUNT(*) FROM sales, store "
            "WHERE f_store = s_id AND s_city = :city",
            {"city": "paris"},
        )
        assert cursor.fetchall() == [(4,)]


class TestErrorMapping:
    def test_parse_error_is_programming_error(self, connection):
        with pytest.raises(ProgrammingError):
            connection.execute("SELEC nonsense")

    def test_unknown_column_is_programming_error(self, connection):
        with pytest.raises(ProgrammingError):
            connection.execute("SELECT nope FROM sales")

    def test_param_mismatch_is_programming_error(self, connection):
        with pytest.raises(ProgrammingError):
            connection.execute(CITY_COUNT_SQL)  # no params given
        with pytest.raises(ProgrammingError):
            connection.execute(CITY_COUNT_SQL, ("lyon", "extra"))

    def test_unbindable_param_type_is_programming_error(self, connection):
        """Both transports map a non-int/float/str parameter value to
        ProgrammingError (never a raw serialization TypeError)."""
        import datetime

        for bad in (datetime.date(2020, 1, 1), object(), [1, 2]):
            with pytest.raises(ProgrammingError, match="int, float, or str"):
                connection.execute(CITY_COUNT_SQL, (bad,))
            with pytest.raises(ProgrammingError, match="int, float, or str"):
                connection.execute(
                    "SELECT COUNT(*) FROM sales, store "
                    "WHERE f_store = s_id AND s_city = :city",
                    {"city": bad},
                )

    def test_parse_errors_leave_no_state_behind(self, local_connection):
        warehouse = local_connection.warehouse
        submissions_before = len(warehouse.submissions)
        with pytest.raises(ProgrammingError):
            local_connection.execute(CITY_COUNT_SQL, (None,))
        assert len(warehouse.submissions) == submissions_before
        assert warehouse.cjoin.active_query_count == 0

    def test_cancelled_fetch_is_operational_error(self, tiny_star):
        catalog, star = tiny_star
        # no driver: the query stays mid-scan until we cancel it
        with repro.connect(
            catalog=catalog, star=star, start_service=False
        ) as conn:
            cursor = conn.execute(GROUPED_SQL)
            assert cursor.cancel() == 1
            with pytest.raises(OperationalError, match="cancelled"):
                cursor.fetchall()


class TestStreamingEquivalence:
    """ISSUE 4 acceptance: cursor-streamed rows == batch-drain results."""

    def test_serial_backend_workload(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        sqls = [render_star_query(query, star) for query in ssb_workload]
        # batch drain on a fresh warehouse, handle.results() reference
        drain = Warehouse(catalog, star, execution="batched")
        drained = [drain.submit(query) for query in ssb_workload]
        drain.run()
        expected = [handle.results() for handle in drained]
        # live service + cursor iteration (mid-scan, incremental)
        with repro.connect(
            Warehouse(catalog, star, execution="batched")
        ) as conn:
            cursors = [conn.execute(sql) for sql in sqls]
            streamed = [list(cursor) for cursor in cursors]
        assert streamed == expected

    def test_process_backend_workload(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        sqls = [render_star_query(query, star) for query in ssb_workload]
        drain = Warehouse(catalog, star, execution="batched")
        drained = [drain.submit(query) for query in ssb_workload]
        drain.run()
        expected = [handle.results() for handle in drained]
        with repro.connect(
            Warehouse(catalog, star, backend="process", workers=2)
        ) as conn:
            cursors = [conn.execute(sql) for sql in sqls]
            streamed = [list(cursor) for cursor in cursors]
        assert streamed == expected

    def test_rows_so_far_converges_to_results(self, tiny_star):
        catalog, star = tiny_star
        from repro.cjoin import CJoinOperator, ExecutorConfig
        from repro.engine import WarehouseService

        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=4)
        )
        operator.distributor.stream_interval = 2
        service = WarehouseService(operator)
        handle = service.submit(
            StarQuery.build(
                "sales",
                dimension_predicates={},
                group_by=[],
                select=[],
                aggregates=[AggregateSpec("sum", "sales", "f_total")],
            )
        )
        assert handle.rows_so_far() == []  # opts into streaming
        service.pump(batches=2)
        partial = handle.rows_so_far()
        assert partial and partial[0][0] > 0  # mid-scan partial sum
        service.drain()
        assert handle.rows_so_far() == handle.results()
        assert list(handle) == handle.results()


class TestRouteTelemetry:
    """ISSUE 4 satellite: all three routes report latency records."""

    def test_baseline_route_records_latency(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        handle = warehouse.submit(
            city_query("lyon"), force=RoutingDecision.BASELINE
        )
        warehouse.run()
        assert handle.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )
        records = warehouse.latency_records
        assert [record.route for record in records] == [ROUTE_BASELINE]
        record = records[0]
        assert record.latency_seconds >= record.wait_seconds >= 0.0
        assert record.scan_cycles == 0.0  # private plans, not the scan
        assert warehouse.latency_summary()["count"] == 1.0

    def test_process_route_records_latency(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, backend="process", workers=2)
        handles = [
            warehouse.submit(city_query(city)) for city in ("lyon", "paris")
        ]
        warehouse.run()
        for city, handle in zip(("lyon", "paris"), handles):
            assert handle.results() == evaluate_star_query(
                city_query(city), catalog
            )
        records = warehouse.latency_records
        assert [record.route for record in records] == [ROUTE_PROCESS] * 2
        assert all(
            record.admitted_with_in_flight == 1 for record in records
        )
        assert all(record.scan_cycles == 1.0 for record in records)

    def test_all_routes_in_one_summary(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.submit(city_query("lyon"))  # service route
        warehouse.submit(
            city_query("paris"), force=RoutingDecision.BASELINE
        )
        warehouse.run()
        routes = sorted(record.route for record in warehouse.latency_records)
        assert routes == [ROUTE_BASELINE, ROUTE_SERVICE]
        assert warehouse.latency_summary()["count"] == 2.0
        # one vocabulary: latency records join the submission log
        assert {record.route for record in warehouse.latency_records} == {
            submission.route for submission in warehouse.submissions
        }

    def test_submission_log_covers_all_routes(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.submit(city_query("lyon"))
        warehouse.submit(
            city_query("paris"), force=RoutingDecision.BASELINE
        )
        routes = [submission.route for submission in warehouse.submissions]
        assert routes == ["service", ROUTE_BASELINE]
        assert warehouse.pending_submissions(ROUTE_BASELINE) == 1
        warehouse.run()
        assert warehouse.pending_submissions(ROUTE_BASELINE) == 0
        assert all(submission.done for submission in warehouse.submissions)


class TestWarehouseContextManager:
    """ISSUE 4 satellite: Warehouse.close() and with-scoping."""

    def test_with_scope_stops_service_and_closes(self, tiny_star):
        catalog, star = tiny_star
        before = set(threading.enumerate())
        with Warehouse(catalog, star) as warehouse:
            warehouse.start_service()
            handle = warehouse.submit(city_query("lyon"))
            assert handle.results(timeout=10.0) == evaluate_star_query(
                city_query("lyon"), catalog
            )
        assert warehouse.closed
        assert not warehouse.service.running
        assert set(threading.enumerate()) == before

    def test_close_is_idempotent_and_rejects_submissions(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.close()
        warehouse.close()
        from repro.errors import QueryError

        with pytest.raises(QueryError, match="closed"):
            warehouse.submit(city_query("lyon"))
        with pytest.raises(QueryError, match="closed"):
            warehouse.submit_sql(
                "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"
            )

    def test_close_cancels_pending_offline_submissions(self, tiny_star):
        """close() cancels queued offline handles (waiters wake with
        CancelledError) and a later run() refuses to drain them."""
        from repro.errors import CancelledError, QueryError

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        pending = warehouse.submit(
            city_query("lyon"), force=RoutingDecision.BASELINE
        )
        warehouse.close()
        with pytest.raises(QueryError, match="closed"):
            warehouse.run()
        assert pending.done and pending.cancelled
        with pytest.raises(CancelledError):
            list(pending)  # a blocked iterator wakes instead of hanging
