"""Tests for the threaded executor (section 4 stage mappings).

These verify architecture and correctness (results identical to the
reference evaluator under every stage mapping); wall-clock speedups
are out of scope under the GIL (see DESIGN.md).
"""

import pytest

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig, ThreadedExecutor
from repro.errors import PipelineError
from repro.query.reference import evaluate_star_query


def run_threaded(catalog, star, queries, config):
    operator = CJoinOperator(catalog, star, executor_config=config)
    operator.start()
    try:
        handles = [operator.submit(query) for query in queries]
        operator.executor.wait_for(handles, timeout=120)
    finally:
        operator.stop()
    return handles


@pytest.mark.parametrize(
    "config",
    [
        ExecutorConfig(mode="horizontal", stage_threads=(1,), batch_size=64),
        ExecutorConfig(mode="horizontal", stage_threads=(4,), batch_size=64),
        ExecutorConfig(mode="vertical", stage_threads=(1,), batch_size=64),
        ExecutorConfig(
            mode="hybrid",
            stage_threads=(2, 1),
            stage_boxes=(2, 2),
            batch_size=64,
        ),
    ],
    ids=["horizontal-1", "horizontal-4", "vertical", "hybrid"],
)
def test_all_stage_mappings_produce_correct_results(
    ssb_small, ssb_workload, config
):
    catalog, star = ssb_small
    queries = ssb_workload[:5]
    handles = run_threaded(catalog, star, queries, config)
    for query, handle in zip(queries, handles):
        assert handle.results() == evaluate_star_query(query, catalog), (
            query.label
        )


def test_mid_flight_admission_under_threads(ssb_small, ssb_workload):
    catalog, star = ssb_small
    config = ExecutorConfig(mode="horizontal", stage_threads=(2,), batch_size=32)
    operator = CJoinOperator(catalog, star, executor_config=config)
    operator.start()
    try:
        first = operator.submit(ssb_workload[0])
        # let the scan advance before the second admission
        import time

        time.sleep(0.05)
        second = operator.submit(ssb_workload[1])
        operator.executor.wait_for([first, second], timeout=120)
    finally:
        operator.stop()
    assert first.results() == evaluate_star_query(ssb_workload[0], catalog)
    assert second.results() == evaluate_star_query(ssb_workload[1], catalog)


def test_stop_is_idempotent(ssb_small):
    catalog, star = ssb_small
    config = ExecutorConfig(mode="horizontal", stage_threads=(2,))
    operator = CJoinOperator(catalog, star, executor_config=config)
    operator.start()
    operator.stop()
    operator.stop()  # second stop must not raise


def test_double_start_rejected(ssb_small):
    catalog, star = ssb_small
    config = ExecutorConfig(mode="horizontal", stage_threads=(2,))
    operator = CJoinOperator(catalog, star, executor_config=config)
    operator.start()
    try:
        with pytest.raises(PipelineError):
            operator.start()
    finally:
        operator.stop()


class TestExecutorConfigValidation:
    def test_unknown_mode(self):
        with pytest.raises(PipelineError):
            ExecutorConfig(mode="diagonal")

    def test_bad_batch_size(self):
        with pytest.raises(PipelineError):
            ExecutorConfig(batch_size=0)

    def test_bad_thread_count(self):
        with pytest.raises(PipelineError):
            ExecutorConfig(stage_threads=(0,))

    def test_threaded_executor_rejects_sync_mode(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        with pytest.raises(PipelineError):
            ThreadedExecutor(
                operator.pipeline, operator.manager, ExecutorConfig()
            )

    def test_hybrid_boxes_must_cover_filters(self, ssb_small, ssb_workload):
        catalog, star = ssb_small
        config = ExecutorConfig(
            mode="hybrid", stage_threads=(1,), stage_boxes=(1,), batch_size=16
        )
        operator = CJoinOperator(catalog, star, executor_config=config)
        operator.submit(ssb_workload[0])  # 3-4 filters, boxes cover 1
        with pytest.raises(PipelineError):
            operator.executor._plan_stages()
