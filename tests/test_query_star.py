"""Unit tests for StarQuery construction and validation."""

import pytest

from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison, TruePredicate
from repro.query.star import ColumnRef, StarQuery


class TestBuildNormalization:
    def test_group_by_dimension_gets_implicit_true_predicate(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("sum", "sales", "f_total")],
        )
        assert query.references("store")
        assert isinstance(query.predicate_on("store"), TruePredicate)
        query.validate(star)

    def test_aggregate_input_dimension_is_referenced(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            aggregates=[AggregateSpec("max", "product", "p_price")],
        )
        assert query.references("product")
        query.validate(star)

    def test_select_defaults_to_group_by(self):
        ref = ColumnRef("store", "s_city")
        query = StarQuery.build(
            "sales",
            group_by=[ref],
            aggregates=[AggregateSpec("count")],
        )
        assert query.select == (ref,)

    def test_unreferenced_dimension_predicate_is_true(self):
        query = StarQuery.build("sales")
        assert isinstance(query.predicate_on("store"), TruePredicate)

    def test_output_labels(self):
        query = StarQuery.build(
            "sales",
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("sum", "sales", "f_total", alias="rev")],
        )
        assert query.output_labels() == ["store.s_city", "rev"]


class TestValidation:
    def test_wrong_fact_table(self, tiny_star):
        _, star = tiny_star
        with pytest.raises(QueryError):
            StarQuery.build("orders").validate(star)

    def test_unknown_dimension(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={"warehouse": TruePredicate()},
        )
        with pytest.raises(Exception):
            query.validate(star)

    def test_predicate_on_unknown_column(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("missing", "=", 1)},
        )
        with pytest.raises(QueryError):
            query.validate(star)

    def test_fact_predicate_on_unknown_column(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales", fact_predicate=Comparison("missing", "=", 1)
        )
        with pytest.raises(QueryError):
            query.validate(star)

    def test_group_by_outside_from_list(self, tiny_star):
        _, star = tiny_star
        query = StarQuery(
            fact_table="sales",
            group_by=(ColumnRef("store", "s_city"),),
            select=(ColumnRef("store", "s_city"),),
            aggregates=(AggregateSpec("count"),),
        )
        # constructed directly (not via build), store never referenced
        with pytest.raises(QueryError):
            query.validate(star)

    def test_selected_column_must_be_grouped_when_aggregating(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            group_by=[ColumnRef("store", "s_city")],
            select=[ColumnRef("store", "s_size")],
            aggregates=[AggregateSpec("count")],
        )
        with pytest.raises(QueryError):
            query.validate(star)

    def test_aggregate_column2_validated(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            aggregates=[
                AggregateSpec("sum", "sales", "f_total", column2="missing")
            ],
        )
        with pytest.raises(QueryError):
            query.validate(star)

    def test_listing_query_validates(self, tiny_star):
        _, star = tiny_star
        query = StarQuery.build(
            "sales",
            select=[ColumnRef("sales", "f_qty"), ColumnRef("store", "s_city")],
        )
        query.validate(star)
        assert not query.is_aggregation
