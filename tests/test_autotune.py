"""The adaptive right-sizing controller and the unified tuning API.

Three layers of coverage for DESIGN.md section 13:

* **TuningConfig and the deprecation shims** — validation ranges, the
  ``tuning=`` / legacy-keyword resolution rules on ``Warehouse`` and
  ``WarehouseService``, and runtime ``reconfigure`` plumbing;
* **controller rules, deterministically** — every AutoTuner rule
  (grow/shrink admission, grow/shrink workers, cooldown suppression,
  bounds clamping, the audit ring bound) driven by a fake clock and a
  fake telemetry probe against a stub warehouse, no threads involved;
* **live integration** — a warehouse resized mid-burst by the real
  controller thread keeps results reference-equal and leaks no
  threads or workers.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Warehouse
from repro.engine.autotune import (
    AutoTuner,
    TuningDecision,
    TuningPolicy,
    TuningSample,
)
from repro.errors import ConfigError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from repro.tuning import TuningConfig


def city_query(city: str, label: str | None = None) -> StarQuery:
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[
            AggregateSpec("count"),
            AggregateSpec("sum", "sales", "f_total"),
        ],
        label=label,
    )


# ----------------------------------------------------------------------
# TuningConfig: validation and value semantics
# ----------------------------------------------------------------------
class TestTuningConfig:
    def test_defaults_validate(self):
        config = TuningConfig()
        assert config.max_in_flight is None
        assert config.workers == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_in_flight": 0},
            {"max_in_flight": "many"},
            {"max_in_flight": True},
            {"admission_queue_depth": 0},
            {"idle_sleep": -0.1},
            {"workers": 0},
            {"workers": 1000},
            {"batch_size": 0},
        ],
    )
    def test_out_of_range_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TuningConfig(**kwargs)

    def test_replace_revalidates(self):
        config = TuningConfig(max_in_flight=8)
        assert config.replace(max_in_flight=16).max_in_flight == 16
        with pytest.raises(ConfigError):
            config.replace(workers=-1)
        # the original is untouched (immutability)
        assert config.max_in_flight == 8

    def test_as_dict_round_trips(self):
        config = TuningConfig(max_in_flight=4, batch_size=64)
        assert TuningConfig(**config.as_dict()) == config


# ----------------------------------------------------------------------
# Deprecation shims on the constructors
# ----------------------------------------------------------------------
class TestDeprecationShims:
    def test_warehouse_legacy_kwarg_warns_and_maps(self, tiny_star):
        catalog, star = tiny_star
        with pytest.warns(DeprecationWarning, match="max_in_flight"):
            warehouse = Warehouse(catalog, star, max_in_flight=2)
        try:
            assert warehouse.tuning.max_in_flight == 2
        finally:
            warehouse.close()

    def test_both_spellings_rejected(self, tiny_star):
        catalog, star = tiny_star
        with pytest.raises(ConfigError, match="both tuning="):
            Warehouse(
                catalog, star,
                tuning=TuningConfig(max_in_flight=2),
                max_in_flight=4,
            )

    def test_unknown_kwarg_is_a_type_error(self, tiny_star):
        catalog, star = tiny_star
        with pytest.raises(TypeError, match="unexpected keyword"):
            Warehouse(catalog, star, max_inflight=2)

    def test_explicit_none_legacy_value_validates_like_before(self, tiny_star):
        """An explicitly passed None is a real value, shim or not:
        ``max_in_flight=None`` stays legal (the field accepts None),
        ``idle_sleep=None`` still raises exactly as pre-shim."""
        catalog, star = tiny_star
        with pytest.warns(DeprecationWarning, match="max_in_flight"):
            warehouse = Warehouse(catalog, star, max_in_flight=None)
        assert warehouse.tuning.max_in_flight is None
        warehouse.close()
        with pytest.raises(ConfigError, match="idle_sleep must be"):
            Warehouse(catalog, star, idle_sleep=None)

    def test_service_legacy_kwarg_warns(self, tiny_star):
        from repro.engine import WarehouseService

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        try:
            with pytest.warns(DeprecationWarning, match="idle_sleep"):
                service = WarehouseService(warehouse.cjoin, idle_sleep=0.5)
            assert service.idle_sleep == 0.5
        finally:
            warehouse.close()


# ----------------------------------------------------------------------
# Runtime reconfiguration plumbing
# ----------------------------------------------------------------------
class TestReconfigure:
    def test_reconfigure_threads_through_every_layer(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(
            catalog, star, tuning=TuningConfig(max_in_flight=4, batch_size=32)
        )
        try:
            warehouse.reconfigure(
                warehouse.tuning.replace(max_in_flight=8, batch_size=64)
            )
            assert warehouse.tuning.max_in_flight == 8
            assert warehouse.service.max_in_flight == 8
            assert warehouse.cjoin.executor.config.batch_size == 64
            assert warehouse.executor_config.batch_size == 64
        finally:
            warehouse.close()

    def test_reconfigure_validates_before_mutating(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        try:
            with pytest.raises(ConfigError):
                # serial backend cannot take workers > 1; nothing moves
                warehouse.reconfigure(TuningConfig(workers=4))
            assert warehouse.tuning.workers == 1
            assert warehouse.service.max_in_flight > 0
        finally:
            warehouse.close()

    def test_stats_snapshot_shape(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        try:
            stats = warehouse.stats()
            assert set(stats) == {
                "latency", "pipeline", "service", "tuning", "backend",
                "autotune", "ingest",
            }
            assert stats["tuning"] == warehouse.tuning.as_dict()
            assert stats["autotune"] == {"enabled": False, "decisions": []}
            import json

            json.dumps(stats)  # the wire shape must stay JSON-able
        finally:
            warehouse.close()


# ----------------------------------------------------------------------
# Controller rules with a fake clock and fake telemetry (no threads)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubWarehouse:
    """Just enough warehouse for AutoTuner.apply: tuning + reconfigure."""

    def __init__(self, tuning: TuningConfig) -> None:
        self.tuning = tuning
        self.applied: list[TuningConfig] = []
        self.fail_with: Exception | None = None

    def reconfigure(self, tuning: TuningConfig) -> TuningConfig:
        if self.fail_with is not None:
            raise self.fail_with
        self.tuning = tuning
        self.applied.append(tuning)
        return tuning


def make_tuner(
    tuning: TuningConfig | None = None,
    policy: TuningPolicy | None = None,
    **tuner_kwargs,
) -> tuple[AutoTuner, StubWarehouse, FakeClock, dict]:
    """A tick-driven tuner: the test mutates ``signals`` between ticks."""
    clock = FakeClock()
    warehouse = StubWarehouse(tuning or TuningConfig(max_in_flight=8))
    signals = {
        "p95": 0.05,
        "wait_p95": 0.0,
        "queued": 0,
        "in_flight": 4,
        "backend": "serial",
        "pending_process": 0,
    }

    def probe() -> TuningSample:
        return TuningSample(
            at=clock(),
            p95=signals["p95"],
            wait_p95=signals["wait_p95"],
            window_count=16,
            queued=signals["queued"],
            in_flight=signals["in_flight"],
            max_in_flight=warehouse.tuning.max_in_flight,
            backend=signals["backend"],
            workers=warehouse.tuning.workers,
            pending_process=signals["pending_process"],
        )

    tuner = AutoTuner(
        warehouse,
        policy=policy
        or TuningPolicy(
            min_in_flight=2,
            max_in_flight=32,
            cooldown_seconds=1.0,
            shrink_patience=3,
        ),
        clock=clock,
        probe=probe,
        **tuner_kwargs,
    )
    return tuner, warehouse, clock, signals


class TestGrowAdmission:
    def test_queue_pressure_doubles_the_bound(self):
        tuner, warehouse, _, signals = make_tuner()
        signals["queued"] = 4  # >= 0.25 * 8
        decision = tuner.tick()
        assert decision is not None and decision.applied
        assert decision.rule == "grow_admission"
        assert decision.action == {
            "knob": "max_in_flight", "from": 8, "raw_target": 16, "to": 16,
        }
        assert warehouse.tuning.max_in_flight == 16
        assert decision.signals["queued"] == 4

    def test_no_growth_below_the_queue_threshold(self):
        tuner, warehouse, _, signals = make_tuner()
        signals["queued"] = 1  # < max(1, 0.25 * 8) = 2
        assert tuner.tick() is None
        assert warehouse.applied == []

    def test_growth_clamps_to_the_policy_bound(self):
        tuner, warehouse, clock, signals = make_tuner(
            policy=TuningPolicy(
                min_in_flight=2, max_in_flight=12, cooldown_seconds=0.0
            )
        )
        signals["queued"] = 8
        decision = tuner.tick()
        assert decision.applied
        assert decision.action["raw_target"] == 16
        assert decision.action["to"] == 12
        assert "clamped" in decision.reason
        assert warehouse.tuning.max_in_flight == 12
        # at the bound, the rule still fires but becomes a no-op audit
        clock.advance(5.0)
        decision = tuner.tick()
        assert not decision.applied
        assert "bounds clamp" in decision.reason
        assert warehouse.tuning.max_in_flight == 12


class TestCooldown:
    def test_actions_inside_the_cooldown_are_suppressed(self):
        tuner, warehouse, clock, signals = make_tuner()
        signals["queued"] = 8
        assert tuner.tick().applied
        clock.advance(0.5)  # < cooldown_seconds=1.0
        suppressed = tuner.tick()
        assert suppressed is not None and not suppressed.applied
        assert suppressed.reason.startswith("cooldown")
        assert warehouse.tuning.max_in_flight == 16  # unchanged
        clock.advance(0.6)  # past the cooldown
        assert tuner.tick().applied
        assert warehouse.tuning.max_in_flight == 32


class TestShrinkAdmission:
    def idle(self, signals) -> None:
        signals["queued"] = 0
        signals["in_flight"] = 0

    def test_shrink_needs_sustained_idleness(self):
        tuner, warehouse, clock, signals = make_tuner()
        self.idle(signals)
        # patience=3: the first three idle ticks only build the streak
        for _ in range(3):
            assert tuner.tick() is None
            clock.advance(0.25)
        decision = tuner.tick()
        assert decision.applied and decision.rule == "shrink_admission"
        assert warehouse.tuning.max_in_flight == 4

    def test_a_busy_sample_resets_the_streak(self):
        tuner, warehouse, clock, signals = make_tuner()
        self.idle(signals)
        for _ in range(3):
            tuner.tick()
            clock.advance(0.25)
        signals["in_flight"] = 8  # busy again
        assert tuner.tick() is None
        self.idle(signals)
        for _ in range(3):  # patience starts over
            assert tuner.tick() is None
            clock.advance(0.25)
        assert tuner.tick().applied

    def test_never_shrinks_below_the_floor(self):
        tuner, warehouse, clock, signals = make_tuner(
            tuning=TuningConfig(max_in_flight=2),
            policy=TuningPolicy(
                min_in_flight=2, max_in_flight=32,
                cooldown_seconds=0.0, shrink_patience=1,
            ),
        )
        self.idle(signals)
        for _ in range(4):
            tuner.tick()
            clock.advance(1.0)
        assert warehouse.tuning.max_in_flight == 2
        assert all(not d.applied for d in tuner.decisions)


class TestWorkerRules:
    def test_backlog_grows_the_pool_and_idle_shrinks_it(self):
        tuner, warehouse, clock, signals = make_tuner(
            tuning=TuningConfig(max_in_flight=8, workers=2),
            policy=TuningPolicy(
                min_workers=1, max_workers=8,
                cooldown_seconds=0.0, shrink_patience=2,
            ),
        )
        signals["backend"] = "process"
        signals["pending_process"] = 5  # > workers=2
        decision = tuner.tick()
        assert decision.applied and decision.rule == "grow_workers"
        assert warehouse.tuning.workers == 4
        signals["pending_process"] = 0
        clock.advance(1.0)
        for _ in range(2):  # patience
            assert tuner.tick() is None
            clock.advance(1.0)
        decision = tuner.tick()
        assert decision.applied and decision.rule == "shrink_workers"
        assert warehouse.tuning.workers == 2

    def test_worker_rules_ignore_the_serial_backend(self):
        tuner, warehouse, clock, signals = make_tuner(
            policy=TuningPolicy(cooldown_seconds=0.0, shrink_patience=1)
        )
        signals["backend"] = "serial"
        signals["pending_process"] = 10
        signals["in_flight"] = 6  # not idle either
        assert tuner.tick() is None
        assert warehouse.applied == []


class TestAudit:
    def test_ring_buffer_is_bounded(self):
        tuner, _, clock, signals = make_tuner(
            policy=TuningPolicy(cooldown_seconds=0.0), audit_limit=4
        )
        signals["queued"] = 64
        for _ in range(7):
            tuner.tick()
            clock.advance(1.0)
        decisions = tuner.decisions
        assert len(decisions) == 4  # oldest dropped
        assert decisions == sorted(decisions, key=lambda d: d.at)

    def test_decisions_are_jsonable(self):
        import json

        tuner, _, _, signals = make_tuner()
        signals["queued"] = 8
        decision = tuner.tick()
        assert isinstance(decision, TuningDecision)
        payload = decision.as_dict()
        json.dumps(payload)
        assert payload["rule"] == "grow_admission"
        assert payload["applied"] is True

    def test_apply_failure_is_audited_not_raised(self):
        tuner, warehouse, _, signals = make_tuner()
        warehouse.fail_with = ConfigError("no")
        signals["queued"] = 8
        decision = tuner.tick()
        assert not decision.applied
        assert decision.reason.startswith("apply failed")
        assert warehouse.tuning.max_in_flight == 8


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_in_flight": 0},
            {"max_in_flight": 1, "min_in_flight": 2},
            {"max_workers": 1, "min_workers": 4},
            {"grow_factor": 0.5},
            {"shrink_factor": 1.5},
            {"shrink_patience": 0},
            {"cooldown_seconds": -1.0},
        ],
    )
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TuningPolicy(**kwargs)


# ----------------------------------------------------------------------
# Live integration: resize mid-burst, results stay reference-equal
# ----------------------------------------------------------------------
class TestLiveResizing:
    def test_mid_burst_resize_keeps_results_reference_equal(self, tiny_star):
        catalog, star = tiny_star
        threads_before = set(threading.enumerate())
        warehouse = Warehouse(
            catalog, star, tuning=TuningConfig(max_in_flight=2)
        )
        warehouse.start_service()
        tuner = warehouse.enable_autotuning(
            policy=TuningPolicy(
                min_in_flight=2, max_in_flight=16, cooldown_seconds=0.01
            ),
            interval=0.005,
        )
        cities = ["lyon", "paris", "nice"] * 8
        try:
            handles = [
                warehouse.submit(city_query(city, label=f"live-{index}"))
                for index, city in enumerate(cities)
            ]
            results = [handle.results(timeout=30.0) for handle in handles]
        finally:
            warehouse.close()
        assert results == [
            evaluate_star_query(city_query(city), catalog) for city in cities
        ]
        assert not tuner.running
        assert tuner.last_error is None
        deadline = time.monotonic() + 5.0
        while (
            set(threading.enumerate()) - threads_before
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert set(threading.enumerate()) == threads_before

    def test_enable_autotuning_is_idempotent_and_closable(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        tuner = warehouse.enable_autotuning(interval=0.01)
        assert warehouse.enable_autotuning() is tuner  # still running
        assert warehouse.stats()["autotune"]["enabled"]
        warehouse.disable_autotuning()
        assert not tuner.running
        warehouse.disable_autotuning()  # idempotent
        warehouse.close()  # close after disable is clean too

    def test_worker_resize_applies_at_the_drain_boundary(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(
            catalog, star, backend="process",
            tuning=TuningConfig(workers=1, batch_size=16),
        )
        tuner = AutoTuner(
            warehouse,
            policy=TuningPolicy(max_workers=2, cooldown_seconds=0.0),
        )
        cities = ["lyon", "paris", "nice", "lyon"]
        try:
            handles = [
                warehouse.submit(city_query(city)) for city in cities
            ]
            decision = tuner.tick()  # pending_process=4 > workers=1
            assert decision is not None and decision.applied
            assert decision.rule == "grow_workers"
            assert warehouse.executor_config.workers == 2
            warehouse.run()
            results = [handle.results() for handle in handles]
        finally:
            warehouse.close()
        assert results == [
            evaluate_star_query(city_query(city), catalog) for city in cities
        ]
