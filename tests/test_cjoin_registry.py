"""Unit tests for query id allocation and handles."""

import pytest

from repro.cjoin.registry import QueryHandle, QueryIdAllocator
from repro.errors import AdmissionError
from repro.query.star import StarQuery


class TestQueryIdAllocator:
    def test_allocates_first_unused_id(self):
        allocator = QueryIdAllocator(max_concurrent=4)
        assert allocator.allocate() == 1
        assert allocator.allocate() == 2
        allocator.release(1)
        assert allocator.allocate() == 1  # reuse the lowest free id

    def test_max_concurrency_enforced(self):
        allocator = QueryIdAllocator(max_concurrent=2)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(AdmissionError):
            allocator.allocate()

    def test_release_unknown_id(self):
        allocator = QueryIdAllocator()
        with pytest.raises(AdmissionError):
            allocator.release(7)

    def test_max_id_tracks_densely(self):
        allocator = QueryIdAllocator(max_concurrent=8)
        for _ in range(3):
            allocator.allocate()
        assert allocator.max_id == 3
        allocator.release(2)
        assert allocator.max_id == 3
        allocator.release(3)
        assert allocator.max_id == 1

    def test_invalid_max_concurrent(self):
        with pytest.raises(AdmissionError):
            QueryIdAllocator(0)


class TestQueryHandle:
    def _handle(self):
        return QueryHandle(StarQuery.build("sales"))

    def test_results_before_completion_raise(self):
        handle = self._handle()
        assert not handle.done
        with pytest.raises(AdmissionError):
            handle.results()
        with pytest.raises(AdmissionError):
            _ = handle.response_time

    def test_complete_fulfills(self):
        handle = self._handle()
        handle.complete([(1, 2)])
        assert handle.done
        assert handle.results() == [(1, 2)]
        assert handle.response_time >= 0

    def test_results_are_copied(self):
        handle = self._handle()
        handle.complete([(1,)])
        handle.results().append((2,))
        assert handle.results() == [(1,)]

    def test_progress_is_one_when_done(self):
        handle = self._handle()
        handle.complete([])
        assert handle.progress == 1.0

    def test_progress_defaults_to_zero(self):
        assert self._handle().progress == 0.0

    def test_eta_zero_when_done(self):
        handle = self._handle()
        handle.complete([])
        assert handle.estimated_seconds_remaining(100.0) == 0.0

    def test_eta_infinite_without_rate(self):
        handle = self._handle()
        handle.set_progress_total(100)
        assert handle.estimated_seconds_remaining(0.0) == float("inf")
