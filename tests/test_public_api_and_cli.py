"""Public API surface and the experiment CLI."""


import repro
from repro.bench.__main__ import main as bench_main


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_is_semver_like(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_headline_workflow_via_root_imports(self):
        """The README's quickstart must work from root imports alone."""
        warehouse = repro.Warehouse.from_ssb(scale_factor=0.0002, seed=1)
        rows = warehouse.execute_sql(
            "SELECT COUNT(*) FROM lineorder, date "
            "WHERE lo_orderdate = d_datekey"
        )
        assert rows[0][0] == warehouse.catalog.table("lineorder").row_count

    def test_error_hierarchy_is_catchable_at_the_root(self):
        from repro.errors import (
            AdmissionError,
            ParseError,
            PipelineError,
            QueryError,
            ReproError,
            SchemaError,
            SnapshotError,
            StorageError,
        )

        for error_type in (
            AdmissionError,
            ParseError,
            PipelineError,
            QueryError,
            SchemaError,
            SnapshotError,
            StorageError,
        ):
            assert issubclass(error_type, ReproError)
        assert issubclass(SnapshotError, StorageError)
        assert issubclass(ParseError, QueryError)

    def test_parse_error_carries_position(self):
        from repro.errors import ParseError

        error = ParseError("boom", position=17)
        assert error.position == 17
        assert "17" in str(error)


class TestBenchCLI:
    def test_runs_selected_experiments(self, capsys):
        assert bench_main(["tab1", "tab3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 3" in out
        assert "all shape checks passed" in out

    def test_unknown_experiment_id(self, capsys):
        assert bench_main(["fig99"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().out

    def test_default_runs_everything(self, capsys):
        assert bench_main([]) == 0
        out = capsys.readouterr().out
        for marker in ("Figure 4", "Figure 8", "Table 2"):
            assert marker in out
