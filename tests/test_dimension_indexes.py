"""Secondary dimension indexes and their transparent use by admission

(paper section 5, "Indexes and Materialized Views").
"""

import pytest

from repro.cjoin import CJoinOperator
from repro.errors import StorageError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between, Comparison, InList
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats


class TestSecondaryIndex:
    def test_lookup_returns_matching_rows(self, tiny_star):
        catalog, _ = tiny_star
        store = catalog.table("store")
        store.create_index("s_city")
        assert store.index_lookup("s_city", ["lyon"]) == [(1, "lyon", 100)]
        assert store.index_lookup("s_city", ["lyon", "nice"]) == [
            (1, "lyon", 100),
            (3, "nice", 50),
        ]

    def test_lookup_without_index_raises(self, tiny_star):
        catalog, _ = tiny_star
        with pytest.raises(StorageError):
            catalog.table("store").index_lookup("s_city", ["lyon"])

    def test_create_index_is_idempotent(self, tiny_star):
        catalog, _ = tiny_star
        store = catalog.table("store")
        store.create_index("s_city")
        store.create_index("s_city")
        assert store.has_index("s_city")

    def test_index_maintained_on_insert(self, tiny_star):
        catalog, _ = tiny_star
        store = catalog.table("store")
        store.create_index("s_city")
        store.insert((4, "lyon", 75))
        assert store.index_lookup("s_city", ["lyon"]) == [
            (1, "lyon", 100),
            (4, "lyon", 75),
        ]

    def test_unknown_column_rejected(self, tiny_star):
        catalog, _ = tiny_star
        with pytest.raises(Exception):
            catalog.table("store").create_index("missing")


class TestAdmissionUsesIndexes:
    def _query(self, predicate):
        return StarQuery.build(
            "sales",
            dimension_predicates={"store": predicate},
            aggregates=[AggregateSpec("count")],
        )

    def test_equality_predicate_avoids_dimension_scan(self, tiny_star):
        catalog, star = tiny_star
        catalog.table("store").create_index("s_city")
        stats = IOStats()
        operator = CJoinOperator(
            catalog, star, buffer_pool=BufferPool(64, stats)
        )
        operator.submit(self._query(Comparison("s_city", "=", "lyon")))
        # admission read no store pages: the index served the predicate
        store_heap_id = catalog.table("store").heap.heap_id
        assert stats._last_page.get(store_heap_id) is None

    def test_in_list_uses_index(self, tiny_star):
        catalog, star = tiny_star
        catalog.table("store").create_index("s_city")
        operator = CJoinOperator(catalog, star)
        query = self._query(InList("s_city", frozenset(["lyon", "nice"])))
        assert operator.execute(query) == evaluate_star_query(query, catalog)

    def test_range_predicate_falls_back_to_scan(self, tiny_star):
        catalog, star = tiny_star
        catalog.table("store").create_index("s_city")
        stats = IOStats()
        operator = CJoinOperator(
            catalog, star, buffer_pool=BufferPool(64, stats)
        )
        query = self._query(Between("s_size", 50, 150))
        handle = operator.submit(query)
        operator.run_until_drained()
        assert handle.results() == evaluate_star_query(query, catalog)

    def test_indexed_and_unindexed_admissions_agree(self, ssb_small):
        catalog, star = ssb_small
        query = StarQuery.build(
            "lineorder",
            dimension_predicates={
                "customer": Comparison("c_region", "=", "ASIA")
            },
            aggregates=[AggregateSpec("count")],
        )
        plain = CJoinOperator(catalog, star).execute(query)
        catalog.table("customer").create_index("c_region")
        indexed = CJoinOperator(catalog, star).execute(query)
        assert plain == indexed == evaluate_star_query(query, catalog)
