"""Unit tests for predicate trees, selectivity, and implied intervals."""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import QueryError
from repro.query.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    TruePredicate,
    estimate_selectivity,
    implied_interval,
)

SCHEMA = TableSchema(
    "t",
    [Column("a", DataType.INT), Column("b", DataType.STRING)],
)

ROWS = [(i, f"s{i}") for i in range(10)]


def matches(predicate, row):
    return predicate.bind(SCHEMA)(row)


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,row,expected",
        [
            ("=", 3, (3, "x"), True),
            ("=", 3, (4, "x"), False),
            ("!=", 3, (4, "x"), True),
            ("<", 3, (2, "x"), True),
            ("<=", 3, (3, "x"), True),
            (">", 3, (4, "x"), True),
            (">=", 3, (3, "x"), True),
            (">=", 3, (2, "x"), False),
        ],
    )
    def test_operators(self, op, value, row, expected):
        assert matches(Comparison("a", op, value), row) is expected

    def test_null_never_matches(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert not matches(Comparison("a", op, 3), (None, "x"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("a", "~", 3)

    def test_referenced_columns(self):
        assert Comparison("a", "=", 1).referenced_columns() == {"a"}


class TestBetweenInTrue:
    def test_between_inclusive(self):
        predicate = Between("a", 2, 4)
        assert matches(predicate, (2, "x"))
        assert matches(predicate, (4, "x"))
        assert not matches(predicate, (5, "x"))

    def test_between_null(self):
        assert not matches(Between("a", 2, 4), (None, "x"))

    def test_in_list(self):
        predicate = InList("b", ["s1", "s5"])
        assert matches(predicate, (0, "s1"))
        assert not matches(predicate, (0, "s2"))

    def test_true_predicate(self):
        assert matches(TruePredicate(), (None, None))
        assert TruePredicate().referenced_columns() == set()


class TestComposite:
    def test_and(self):
        predicate = And(Comparison("a", ">", 1), Comparison("a", "<", 5))
        assert matches(predicate, (3, "x"))
        assert not matches(predicate, (7, "x"))

    def test_or(self):
        predicate = Or(Comparison("a", "=", 1), Comparison("a", "=", 9))
        assert matches(predicate, (9, "x"))
        assert not matches(predicate, (5, "x"))

    def test_not(self):
        assert matches(Not(Comparison("a", "=", 1)), (2, "x"))

    def test_empty_composite_rejected(self):
        with pytest.raises(QueryError):
            And()

    def test_nested_referenced_columns(self):
        predicate = And(
            Or(Comparison("a", "=", 1), Comparison("b", "=", "x")),
            Not(Comparison("a", ">", 5)),
        )
        assert predicate.referenced_columns() == {"a", "b"}

    def test_composite_equality(self):
        assert And(Comparison("a", "=", 1)) == And(Comparison("a", "=", 1))
        assert And(Comparison("a", "=", 1)) != Or(Comparison("a", "=", 1))


class TestSelectivity:
    def test_exact_fraction(self):
        predicate = Comparison("a", "<", 5)
        assert estimate_selectivity(predicate, ROWS, SCHEMA) == 0.5

    def test_empty_rows_default_one(self):
        assert estimate_selectivity(TruePredicate(), [], SCHEMA) == 1.0


class TestImpliedInterval:
    def test_equality(self):
        assert implied_interval(Comparison("a", "=", 7), "a") == (7, 7, True, True)

    def test_between(self):
        assert implied_interval(Between("a", 1, 9), "a") == (1, 9, True, True)

    def test_inequality_directions(self):
        assert implied_interval(Comparison("a", "<", 5), "a") == (
            None, 5, True, False,
        )
        assert implied_interval(Comparison("a", ">=", 5), "a") == (
            5, None, True, True,
        )

    def test_other_column_is_unbounded(self):
        assert implied_interval(Comparison("b", "=", "x"), "a") == (
            None, None, True, True,
        )

    def test_and_intersects(self):
        predicate = And(Comparison("a", ">=", 2), Comparison("a", "<=", 8))
        assert implied_interval(predicate, "a") == (2, 8, True, True)

    def test_or_takes_hull(self):
        predicate = Or(Between("a", 1, 2), Between("a", 8, 9))
        assert implied_interval(predicate, "a") == (1, 9, True, True)

    def test_in_list_hull(self):
        assert implied_interval(InList("a", [7, 3, 5]), "a") == (
            3, 7, True, True,
        )

    def test_not_is_conservative(self):
        assert implied_interval(Not(Between("a", 1, 2)), "a") == (
            None, None, True, True,
        )

    def test_interval_is_always_sound(self):
        """Values accepted by the predicate always lie in the interval."""
        predicates = [
            Comparison("a", "=", 4),
            Between("a", 2, 6),
            And(Comparison("a", ">", 1), Comparison("a", "<", 8)),
            Or(Comparison("a", "=", 0), Comparison("a", "=", 9)),
            And(Or(Between("a", 1, 3), Between("a", 6, 7)), Comparison("a", "!=", 2)),
        ]
        for predicate in predicates:
            low, high, low_inc, high_inc = implied_interval(predicate, "a")
            matcher = predicate.bind(SCHEMA)
            for value in range(-2, 12):
                if matcher((value, "x")):
                    if low is not None:
                        assert value >= low if low_inc else value > low
                    if high is not None:
                        assert value <= high if high_inc else value < high
