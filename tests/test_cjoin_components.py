"""Component-level tests: Preprocessor, Distributor, aggregation

operators, pipeline wiring, and stats — the pieces not already covered
by the end-to-end operator suite, with emphasis on error paths and the
control-tuple protocol.
"""

import pytest

from repro import bitvec
from repro.cjoin.aggregation import (
    AggregationOperator,
    ListingOperator,
    make_output_operator,
)
from repro.cjoin.distributor import Distributor
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.filter import Filter
from repro.cjoin.pipeline import CJoinPipeline
from repro.cjoin.preprocessor import Preprocessor
from repro.cjoin.registry import QueryHandle, RegisteredQuery
from repro.cjoin.stats import FilterStats, PipelineStats
from repro.cjoin.tuples import FactTuple, QueryEnd, QueryStart
from repro.errors import PipelineError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import ColumnRef, StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.scan import ContinuousScan
from tests.conftest import make_tiny_star


def build_preprocessor():
    catalog, star = make_tiny_star()
    stats = PipelineStats()
    scan = ContinuousScan(catalog.table("sales"), BufferPool(16))
    return Preprocessor(scan, star, stats), catalog, star, stats


def registration(query_id=1, query=None):
    query = query if query is not None else StarQuery.build(
        "sales", aggregates=[AggregateSpec("count")]
    )
    handle = QueryHandle(query)
    reg = RegisteredQuery(query_id, query, handle)
    handle.registration = reg
    return reg


class TestPreprocessorProtocol:
    def test_activate_requires_stall(self):
        preprocessor, *_ = build_preprocessor()
        with pytest.raises(PipelineError):
            preprocessor.activate(registration())

    def test_resume_without_stall(self):
        preprocessor, *_ = build_preprocessor()
        with pytest.raises(PipelineError):
            preprocessor.resume()

    def test_start_control_tuple_precedes_data(self):
        preprocessor, *_ = build_preprocessor()
        preprocessor.stall()
        preprocessor.activate(registration())
        preprocessor.resume()
        items = preprocessor.next_items(5)
        assert isinstance(items[0], QueryStart)
        assert all(isinstance(item, FactTuple) for item in items[1:])

    def test_sequence_numbers_strictly_increase(self):
        preprocessor, *_ = build_preprocessor()
        preprocessor.stall()
        preprocessor.activate(registration())
        preprocessor.resume()
        sequences = []
        for _ in range(4):
            sequences.extend(
                item.sequence for item in preprocessor.next_items(5)
            )
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_end_emitted_before_wrapped_tuple(self):
        preprocessor, catalog, *_ = build_preprocessor()
        rows = catalog.table("sales").row_count
        preprocessor.stall()
        preprocessor.activate(registration())
        preprocessor.resume()
        items = []
        while not any(isinstance(item, QueryEnd) for item in items):
            items.extend(preprocessor.next_items(7))
        end_index = next(
            i for i, item in enumerate(items) if isinstance(item, QueryEnd)
        )
        data_before = [
            item for item in items[:end_index] if isinstance(item, FactTuple)
        ]
        # exactly one full cycle of data precedes the end tuple
        assert len(data_before) == rows
        assert data_before[0].position == data_before[-1].position - rows + 1 or True
        assert data_before[0].position == 0

    def test_no_items_without_active_queries(self):
        preprocessor, *_ = build_preprocessor()
        assert preprocessor.next_items(10) == []

    def test_fact_predicate_clears_bits_at_source(self):
        preprocessor, catalog, star, stats = build_preprocessor()
        query = StarQuery.build(
            "sales",
            fact_predicate=Comparison("f_qty", ">", 100),  # matches nothing
            aggregates=[AggregateSpec("count")],
        )
        preprocessor.stall()
        preprocessor.activate(registration(1, query))
        preprocessor.resume()
        items = preprocessor.next_items(20)
        assert not any(isinstance(item, FactTuple) for item in items)
        assert stats.tuples_preprocessor_dropped > 0

    def test_two_queries_same_start_position(self):
        preprocessor, catalog, *_ = build_preprocessor()
        preprocessor.stall()
        preprocessor.activate(registration(1))
        preprocessor.activate(registration(2))
        preprocessor.resume()
        ends = 0
        guard = 0
        while ends < 2:
            for item in preprocessor.next_items(8):
                if isinstance(item, QueryEnd):
                    ends += 1
            guard += 1
            assert guard < 100
        assert preprocessor.active_count == 0


class TestAggregationOperators:
    def _star(self):
        _, star = make_tiny_star()
        return star

    def _tuple(self, row, dim_rows=None):
        fact_tuple = FactTuple(0, 0, row, 0b1)
        if dim_rows:
            fact_tuple.dim_rows = dict(dim_rows)
        return fact_tuple

    def test_group_by_accumulates_per_key(self):
        star = self._star()
        query = StarQuery.build(
            "sales",
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("sum", "sales", "f_total")],
        )
        operator = AggregationOperator(query, star)
        operator.consume(self._tuple((1, 10, 2, 10), {"store": (1, "lyon", 100)}))
        operator.consume(self._tuple((1, 20, 1, 30), {"store": (1, "lyon", 100)}))
        operator.consume(self._tuple((2, 10, 5, 25), {"store": (2, "paris", 250)}))
        assert operator.results() == [("lyon", 40), ("paris", 25)]
        assert operator.group_count == 2

    def test_global_group_without_group_by(self):
        star = self._star()
        query = StarQuery.build(
            "sales",
            aggregates=[AggregateSpec("count"), AggregateSpec("min", "sales", "f_qty")],
        )
        operator = AggregationOperator(query, star)
        for qty in (5, 2, 9):
            operator.consume(self._tuple((1, 10, qty, 1)))
        assert operator.results() == [(3, 2)]

    def test_empty_aggregation_yields_no_rows(self):
        star = self._star()
        query = StarQuery.build(
            "sales",
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("count")],
        )
        assert AggregationOperator(query, star).results() == []

    def test_listing_operator_collects_sorted(self):
        star = self._star()
        query = StarQuery.build(
            "sales", select=[ColumnRef("sales", "f_qty")]
        )
        operator = ListingOperator(query, star)
        for qty in (5, 2, 9):
            operator.consume(self._tuple((1, 10, qty, 1)))
        assert operator.results() == [(2,), (5,), (9,)]

    def test_factory_picks_operator_kind(self):
        star = self._star()
        aggregating = StarQuery.build(
            "sales", aggregates=[AggregateSpec("count")]
        )
        listing = StarQuery.build(
            "sales", select=[ColumnRef("sales", "f_qty")]
        )
        assert isinstance(
            make_output_operator(aggregating, star), AggregationOperator
        )
        assert isinstance(make_output_operator(listing, star), ListingOperator)

    def test_aggregation_operator_rejects_listing_query(self):
        star = self._star()
        listing = StarQuery.build(
            "sales", select=[ColumnRef("sales", "f_qty")]
        )
        with pytest.raises(PipelineError):
            AggregationOperator(listing, star)


class TestDistributor:
    def _distributor(self):
        _, star = make_tiny_star()
        return Distributor(star, PipelineStats())

    def test_routes_by_bitvector(self):
        distributor = self._distributor()
        finished = []
        distributor.on_query_finished = finished.append
        reg1 = registration(1)
        reg2 = registration(2)
        distributor.process(QueryStart(1, reg1))
        distributor.process(QueryStart(2, reg2))
        fact_tuple = FactTuple(3, 0, (1, 10, 2, 10), bitvec.from_string("11"))
        distributor.process(fact_tuple)
        only_two = FactTuple(4, 1, (1, 10, 2, 10), bitvec.from_string("01"))
        distributor.process(only_two)
        distributor.process(QueryEnd(5, 1))
        distributor.process(QueryEnd(6, 2))
        assert reg1.handle.results() == [(1,)]
        assert reg2.handle.results() == [(2,)]
        assert finished == [1, 2]

    def test_tuple_for_unknown_query_raises(self):
        distributor = self._distributor()
        orphan = FactTuple(1, 0, (1, 10, 2, 10), 0b1)
        with pytest.raises(PipelineError):
            distributor.process(orphan)

    def test_double_start_rejected(self):
        distributor = self._distributor()
        reg = registration(1)
        distributor.process(QueryStart(1, reg))
        with pytest.raises(PipelineError):
            distributor.process(QueryStart(2, reg))

    def test_end_for_unknown_query_rejected(self):
        distributor = self._distributor()
        with pytest.raises(PipelineError):
            distributor.process(QueryEnd(1, 7))

    def test_unknown_item_rejected(self):
        distributor = self._distributor()
        with pytest.raises(PipelineError):
            distributor.process(object())


class TestPipelineWiring:
    def _pipeline(self):
        preprocessor, catalog, star, stats = build_preprocessor()
        distributor = Distributor(star, stats)
        pipeline = CJoinPipeline(preprocessor, distributor, stats)
        return pipeline, star

    def _filter(self, star, name):
        table = DimensionHashTable(star.dimension(name))
        return Filter(table, star)

    def test_duplicate_filter_rejected(self):
        pipeline, star = self._pipeline()
        pipeline.add_filter(self._filter(star, "store"))
        with pytest.raises(PipelineError):
            pipeline.add_filter(self._filter(star, "store"))

    def test_remove_missing_filter_rejected(self):
        pipeline, _ = self._pipeline()
        with pytest.raises(PipelineError):
            pipeline.remove_filter("store")

    def test_reorder_must_be_permutation(self):
        pipeline, star = self._pipeline()
        pipeline.add_filter(self._filter(star, "store"))
        pipeline.add_filter(self._filter(star, "product"))
        with pytest.raises(PipelineError):
            pipeline.reorder([self._filter(star, "store")])

    def test_order_log_records_changes(self):
        pipeline, star = self._pipeline()
        store = self._filter(star, "store")
        product = self._filter(star, "product")
        pipeline.add_filter(store)
        pipeline.add_filter(product)
        pipeline.reorder([product, store])
        assert pipeline.stats.filter_orders == [
            ("store",),
            ("store", "product"),
            ("product", "store"),
        ]

    def test_filter_lookup(self):
        pipeline, star = self._pipeline()
        store = self._filter(star, "store")
        pipeline.add_filter(store)
        assert pipeline.filter_for("store") is store
        assert pipeline.has_filter("store")
        assert not pipeline.has_filter("product")
        with pytest.raises(PipelineError):
            pipeline.filter_for("product")


class TestStats:
    def test_filter_stats_rates(self):
        stats = FilterStats()
        assert stats.pass_rate == 1.0
        stats.tuples_in = 10
        stats.tuples_dropped = 4
        assert stats.drop_rate == pytest.approx(0.4)
        assert stats.pass_rate == pytest.approx(0.6)

    def test_pipeline_stats_probes_per_tuple(self):
        stats = PipelineStats()
        assert stats.probes_per_tuple == 0.0
        stats.tuples_scanned = 10
        stats.probes_total = 25
        assert stats.probes_per_tuple == 2.5

    def test_record_order_dedupes_consecutive(self):
        stats = PipelineStats()
        stats.record_order(("a",))
        stats.record_order(("a",))
        stats.record_order(("b",))
        assert stats.filter_orders == [("a",), ("b",)]
