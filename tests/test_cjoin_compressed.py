"""CJOIN over a dictionary-compressed fact table (section 5)."""

from repro.catalog.catalog import Catalog
from repro.cjoin import CJoinOperator
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.ssb.generator import SSBGenerator
from repro.ssb.schema import ssb_star_schema
from repro.storage.compression import (
    DecompressingContinuousScan,
    compress_table,
)
from repro.storage.buffer import BufferPool
from repro.storage.table import Table


def compressed_ssb():
    """A milli-SSB whose fact string columns are dictionary-coded."""
    star = ssb_star_schema()
    generator = SSBGenerator(scale_factor=0.0005, seed=19)
    data = generator.generate_all()
    row_catalog = Catalog()
    for name in ("date", "customer", "supplier", "part"):
        row_catalog.register_table(
            Table.from_rows(star.dimension(name), data[name])
        )
    fact = Table.from_rows(star.fact, data["lineorder"])
    row_catalog.register_table(fact)
    row_catalog.register_star(star)
    compressed = compress_table(
        fact, ["lo_orderpriority", "lo_shipmode"]
    )
    return row_catalog, star, compressed


class TestDecompressingScan:
    def test_yields_logical_tuples(self):
        catalog, star, compressed = compressed_ssb()
        scan = DecompressingContinuousScan(compressed, BufferPool(64))
        original = catalog.table("lineorder").all_rows()
        for expected_position in range(5):
            position, row = scan.next()
            assert position == expected_position
            assert row == original[expected_position]

    def test_wraps_stably(self):
        _, _, compressed = compressed_ssb()
        scan = DecompressingContinuousScan(compressed, BufferPool(64))
        rows = compressed.row_count
        first = [scan.next() for _ in range(rows)]
        assert [scan.next() for _ in range(rows)] == first


class TestCJoinOnCompressedFact:
    def test_matches_reference_on_row_storage(self):
        catalog, star, compressed = compressed_ssb()
        operator = CJoinOperator(catalog, star)
        # swap in the decompressing scan: CJOIN is storage-agnostic
        operator.scan = DecompressingContinuousScan(
            compressed, operator.buffer_pool
        )
        operator.preprocessor.scan = operator.scan
        queries = [
            StarQuery.build(
                "lineorder",
                dimension_predicates={
                    "date": Comparison("d_year", "=", 1992)
                },
                group_by=[ColumnRef("date", "d_month")],
                aggregates=[AggregateSpec("sum", "lineorder", "lo_revenue")],
            ),
            StarQuery.build(
                "lineorder",
                # predicate on a *compressed* fact column, evaluated on
                # the decompressed logical tuple
                fact_predicate=Comparison("lo_shipmode", "=", "AIR"),
                aggregates=[AggregateSpec("count")],
            ),
        ]
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()
        for query, handle in zip(queries, handles):
            assert handle.results() == evaluate_star_query(query, catalog)

    def test_compression_actually_shrinks_this_fact(self):
        _, _, compressed = compressed_ssb()
        assert compressed.compression_ratio() > 1.05
