"""The always-on warehouse service (DESIGN.md section 9).

Covers the serving surface end to end: background continuous scan,
mid-scan online admission from many threads, bounded admission
queueing, handle quality-of-life (blocking results, latency
timestamps, completion callbacks), latency telemetry, idle
throttling, clean shutdown, and the open-loop soak acceptance test.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import Warehouse, WarehouseService
from repro.errors import AdmissionError, PipelineError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between, Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.ssb.generator import load_ssb


def city_query(city: str, label: str | None = None) -> StarQuery:
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[AggregateSpec("count"), AggregateSpec("sum", "sales", "f_total")],
        label=label,
    )


def _wait_until(predicate, timeout: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return predicate()


class TestServiceLifecycle:
    def test_start_stop_no_leaked_threads(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        before = set(threading.enumerate())
        service = warehouse.start_service()
        assert service.running
        warehouse.stop_service()
        assert not service.running
        assert set(threading.enumerate()) == before

    def test_double_start_rejected(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.start_service()
        try:
            with pytest.raises(PipelineError, match="already running"):
                warehouse.start_service()
        finally:
            warehouse.stop_service()

    def test_stop_is_idempotent_and_restartable(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.stop_service()  # never started: no-op
        warehouse.start_service()
        warehouse.stop_service()
        warehouse.stop_service()
        warehouse.start_service()  # restart over the same pipeline state
        handle = warehouse.submit(city_query("lyon"))
        assert handle.results(timeout=10.0) == evaluate_star_query(
            city_query("lyon"), catalog
        )
        warehouse.stop_service()

    def test_idle_service_burns_no_scan_work(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, idle_sleep=0.0005)
        warehouse.start_service()
        try:
            time.sleep(0.05)
            assert warehouse.cjoin.stats.tuples_scanned == 0
        finally:
            warehouse.stop_service()

    def test_stop_preserves_in_flight_queries(self, tiny_star):
        """Stopping mid-query is clean; run() later completes it."""
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        # no driver running: inline admission registers the query but
        # nothing advances the scan until run()
        handle = warehouse.submit(city_query("paris"))
        warehouse.start_service()
        warehouse.stop_service()
        warehouse.run()
        assert handle.results() == evaluate_star_query(
            city_query("paris"), catalog
        )


class TestSubmission:
    def test_submit_completes_in_background(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.start_service()
        try:
            handle = warehouse.submit(city_query("nice"))
            assert handle.results(timeout=10.0) == evaluate_star_query(
                city_query("nice"), catalog
            )
        finally:
            warehouse.stop_service()

    def test_results_timeout_expires(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        # service not running: nothing will complete the query
        handle = warehouse.submit(city_query("lyon"))
        with pytest.raises(AdmissionError, match="did not complete within"):
            handle.results(timeout=0.01)

    def test_nonblocking_results_contract_unchanged(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        handle = warehouse.submit(city_query("lyon"))
        with pytest.raises(AdmissionError, match="has not completed"):
            handle.results()

    def test_admission_queue_overflow_rejected(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(
            catalog, star, max_in_flight=1, admission_queue_depth=2
        )
        for _ in range(3):  # 1 in flight + 2 queued
            warehouse.submit(city_query("lyon"))
        with pytest.raises(AdmissionError, match="admission queue is full"):
            warehouse.submit(city_query("lyon"))
        warehouse.run()  # the accepted ones still all complete

    def test_invalid_query_rejected_at_submission(self, tiny_star):
        from repro.errors import SchemaError

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, max_in_flight=1)
        warehouse.submit(city_query("lyon"))  # occupy the slot
        bad = StarQuery.build(
            "sales",
            dimension_predicates={"nope": Comparison("x", "=", 1)},
            aggregates=[AggregateSpec("count")],
        )
        with pytest.raises(SchemaError):
            warehouse.submit(bad)  # validated up front, not on the driver

    def test_queued_submissions_keep_their_handle(self, tiny_star):
        """No placeholder forwarding: the queued handle is THE handle."""
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, max_in_flight=1)
        first = warehouse.submit(city_query("lyon"))
        queued = warehouse.submit(city_query("paris"))
        assert warehouse.service.queued == 1
        assert queued.registration is None  # not admitted yet
        warehouse.run()
        assert queued.registration is not None
        assert queued.done and first.done
        assert queued.wait_seconds >= 0.0


class TestHandleTelemetry:
    def test_latency_properties(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        handle = warehouse.submit(city_query("lyon"))
        with pytest.raises(AdmissionError):
            _ = handle.latency_seconds
        warehouse.run()
        assert handle.latency_seconds >= handle.wait_seconds >= 0.0
        assert handle.admitted_at is not None
        assert handle.first_result_at is not None
        assert handle.completed_at >= handle.admitted_at >= handle.submitted_at

    def test_wait_seconds_before_admission_raises(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, max_in_flight=1)
        warehouse.submit(city_query("lyon"))
        queued = warehouse.submit(city_query("paris"))
        with pytest.raises(AdmissionError, match="not been admitted"):
            _ = queued.wait_seconds

    def test_on_complete_callback(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        seen = []
        handle = warehouse.submit(city_query("lyon"))
        handle.on_complete(seen.append)
        warehouse.run()
        assert seen == [handle]
        # registering on a done handle fires immediately
        handle.on_complete(seen.append)
        assert seen == [handle, handle]

    def test_latency_records_accumulate(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        for city in ("lyon", "paris", "nice"):
            warehouse.submit(city_query(city, label=city))
        warehouse.run()
        records = warehouse.service.latency_records
        assert [record.label for record in records] == ["lyon", "paris", "nice"]
        for record in records:
            assert record.latency_seconds >= record.wait_seconds >= 0.0
            assert record.scan_cycles > 0.0
        summary = warehouse.service.latency_summary()
        assert summary["count"] == 3.0
        assert summary["p99"] >= summary["p95"] >= summary["p50"] > 0.0


class TestMidScanAdmission:
    def test_second_query_joins_mid_scan(self, tiny_star):
        """A query admitted while another is mid-cycle still matches."""
        from repro.cjoin import CJoinOperator, ExecutorConfig

        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=4)
        )
        service = WarehouseService(operator)
        first = service.submit(city_query("lyon"))
        service.pump(batches=1)  # advance the scan partway into the cycle
        assert not first.done
        second = service.submit(city_query("paris"))
        service.drain()
        assert second.registration.start_position > 0  # mid-scan, not 0
        assert second.registration.admitted_with_in_flight == 1
        assert first.results() == evaluate_star_query(city_query("lyon"), catalog)
        assert second.results() == evaluate_star_query(city_query("paris"), catalog)

    def test_pump_conflicts_with_running_driver(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.start_service()
        try:
            with pytest.raises(PipelineError, match="running driver"):
                warehouse.service.pump()
        finally:
            warehouse.stop_service()


def _soak_query(index: int) -> StarQuery:
    windows = [
        (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
        (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
    ]
    first, last = windows[index % len(windows)]
    return StarQuery.build(
        "lineorder",
        dimension_predicates={"date": Between("d_year", first, last)},
        group_by=[ColumnRef("date", "d_year")],
        aggregates=[
            AggregateSpec("sum", "lineorder", "lo_revenue"),
            AggregateSpec("count"),
        ],
        label=f"soak-{index}",
    )


def test_open_loop_soak():
    """The ISSUE-3 acceptance soak: a live service, 64 queries arriving
    over time from 8 threads, every one admitted mid-scan, all results
    equal to the reference evaluator, clean shutdown with no leaked
    threads, and a p50/p95/p99 latency report."""
    catalog, star = load_ssb(scale_factor=0.002, seed=31)
    warehouse = Warehouse(
        catalog, star, execution="batched", max_in_flight=16
    )
    threads_before = set(threading.enumerate())
    service = warehouse.start_service()

    # a pilot keeps the scan mid-cycle while the arrival threads spin up,
    # so every soak query joins a busy pipeline (mid-scan by construction)
    pilot = warehouse.submit(_soak_query(0))
    assert _wait_until(lambda: warehouse.cjoin.stats.tuples_scanned > 0)

    queries_per_thread = 8
    thread_count = 8
    handles: dict[int, object] = {}
    handles_lock = threading.Lock()
    errors: list[BaseException] = []

    def client(thread_index: int) -> None:
        try:
            for position in range(queries_per_thread):
                index = thread_index * queries_per_thread + position
                handle = warehouse.submit(_soak_query(index))
                with handles_lock:
                    handles[index] = handle
                time.sleep(0.0005 * (thread_index % 3))
        except BaseException as error:  # surfaced in the main thread
            errors.append(error)

    clients = [
        threading.Thread(target=client, args=(i,), name=f"soak-client-{i}")
        for i in range(thread_count)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join(timeout=60)
    assert not errors, errors

    total = thread_count * queries_per_thread
    assert len(handles) == total
    results = {
        index: handle.results(timeout=60.0)
        for index, handle in handles.items()
    }
    assert pilot.results(timeout=60.0) == evaluate_star_query(
        _soak_query(0), catalog
    )

    service.drain(timeout=60.0)
    warehouse.stop_service()
    assert not service.running
    assert set(threading.enumerate()) == threads_before, "leaked threads"

    # every soak query was admitted mid-scan, not at a drain boundary
    soak_records = [
        record
        for record in service.latency_records
        if record.label and record.label.startswith("soak-")
    ]
    assert len(soak_records) == total + 1  # the 64 arrivals plus the pilot
    mid_scan = [
        record
        for record in service.latency_records
        if record.admitted_with_in_flight > 0
    ]
    assert len(mid_scan) >= total, (
        f"only {len(mid_scan)}/{total + 1} admissions were mid-scan"
    )

    # correctness: every arrival stream result equals the reference
    expected = {
        index: evaluate_star_query(_soak_query(index), catalog)
        for index in range(total)
    }
    assert results == expected

    summary = service.latency_summary()
    assert summary["count"] == float(total + 1)
    assert summary["p99"] >= summary["p95"] >= summary["p50"] > 0.0
    print(
        f"\nsoak: {total} queries over {thread_count} threads, "
        f"p50 {summary['p50'] * 1e3:.1f} ms, "
        f"p95 {summary['p95'] * 1e3:.1f} ms, "
        f"p99 {summary['p99'] * 1e3:.1f} ms, "
        f"wait p95 {summary['wait_p95'] * 1e3:.1f} ms, "
        f"{len(mid_scan)}/{total + 1} mid-scan admissions"
    )


class TestRunCompatibility:
    def test_run_waits_for_running_service(self, tiny_star):
        """run() with a live driver blocks until everything completes."""
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        warehouse.start_service()
        try:
            handles = [
                warehouse.submit(city_query(city))
                for city in ("lyon", "paris", "nice")
            ]
            warehouse.run()
            for city, handle in zip(("lyon", "paris", "nice"), handles):
                assert handle.done
                assert handle.results() == evaluate_star_query(
                    city_query(city), catalog
                )
        finally:
            warehouse.stop_service()

    def test_service_constructor_rejects_threaded_drain(self, tiny_star):
        from repro.cjoin import CJoinOperator, ExecutorConfig

        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog,
            star,
            executor_config=ExecutorConfig(mode="horizontal", stage_threads=(2,)),
        )
        service = WarehouseService(operator)
        with pytest.raises(PipelineError, match="synchronous executor"):
            service.drain()

    def test_service_over_threaded_executor(self, tiny_star):
        """run_forever() is uniform: the stage-threaded driver serves too."""
        from repro.cjoin import CJoinOperator, ExecutorConfig

        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog,
            star,
            executor_config=ExecutorConfig(mode="horizontal", stage_threads=(2,)),
        )
        before = set(threading.enumerate())
        service = WarehouseService(operator, idle_sleep=0.0005).start()
        try:
            handle = service.submit(city_query("lyon"))
            assert handle.results(timeout=10.0) == evaluate_star_query(
                city_query("lyon"), catalog
            )
            service.drain(timeout=10.0)
        finally:
            service.stop()
        assert not service.running
        assert set(threading.enumerate()) == before, "leaked threads"


class TestBlueGreenSwap:
    """ISSUE 10 tentpole: zero-downtime dataset swaps (DESIGN.md
    section 16).  Eight concurrent clients stream queries through a
    :func:`blue_green_swap`; every result must be reference-equal
    against the dataset version that admitted it, no client may see a
    dropped session, and the old warehouse must end retired with its
    service threads reclaimed."""

    def test_swap_under_concurrent_clients(self, tiny_star):
        from repro.engine import WarehouseHolder, blue_green_swap
        from repro.errors import QueryError
        from tests.conftest import make_tiny_star

        catalog, star = tiny_star
        before = set(threading.enumerate())
        live = Warehouse(catalog, star)
        live.start_service()
        holder = WarehouseHolder(live)

        # the next dataset version: same star, one extra fact row, so
        # blue and green answers are distinguishable
        catalog2, star2 = make_tiny_star()
        shadow = Warehouse(catalog2, star2)
        shadow.ingest(fact_rows=[(1, 10, 7, 7000)])
        shadow.apply_pending_ingest()

        clients = 8
        swapped = threading.Event()
        stop = threading.Event()
        failures: list[str] = []
        checked = [0] * clients

        def client(index: int) -> None:
            while not (stop.is_set() and swapped.is_set()):
                admitted = holder.warehouse  # capture, then submit
                try:
                    handle = admitted.submit(city_query("lyon"))
                    results = handle.results(timeout=10.0)
                except QueryError:
                    # lost the race against retirement: the captured
                    # version closed before the submit landed.  That
                    # is a retry, never a dropped session.
                    continue
                expected = evaluate_star_query(
                    city_query("lyon"), admitted.catalog
                )
                if results != expected:
                    failures.append(
                        f"client {index}: {results} != {expected}"
                    )
                    return
                checked[index] += 1
                if stop.is_set():
                    return

        threads = [
            threading.Thread(target=client, args=(index,), daemon=True)
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        try:
            # every client is mid-stream before the cutover
            assert _wait_until(
                lambda: all(count > 0 for count in checked)
            ), f"clients never warmed up: {checked}"
            report = blue_green_swap(holder, shadow)
            swapped.set()
            assert holder.warehouse is shadow
            assert report.retired and live.closed
            assert report.shadow_started and shadow.service.running
            # every client keeps streaming against the new version
            after_swap = list(checked)
            assert _wait_until(
                lambda: all(
                    count > was
                    for count, was in zip(checked, after_swap)
                )
            ), f"clients stalled after swap: {checked} vs {after_swap}"
        finally:
            stop.set()
            swapped.set()
            for thread in threads:
                thread.join(timeout=10.0)
            shadow.close()
            if not live.closed:
                live.close()
        assert failures == []
        assert not any(thread.is_alive() for thread in threads)
        # the swap retired the old service's threads too
        assert _wait_until(
            lambda: set(threading.enumerate()) - before == set()
        ), f"leaked threads: {set(threading.enumerate()) - before}"
        # and the new version answers with its extra row visible
        expected = evaluate_star_query(city_query("lyon"), catalog2)
        assert expected != evaluate_star_query(city_query("lyon"), catalog)
