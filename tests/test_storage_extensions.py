"""Unit tests for the section-5 storage extensions:

column store, dictionary compression, range partitioning.
"""

import pytest

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnStoreTable
from repro.storage.compression import DictionaryCodec, compress_table
from repro.storage.iostats import IOStats
from repro.storage.partition import PartitionedTable, RangePartitioning
from repro.storage.table import Table


def _schema():
    return TableSchema(
        "t",
        [
            Column("k", DataType.INT),
            Column("name", DataType.STRING),
            Column("value", DataType.INT),
        ],
    )


ROWS = [(i, f"name{i % 3}", i * 10) for i in range(12)]


class TestColumnStore:
    def test_merge_scan_reconstructs_requested_columns(self):
        table = ColumnStoreTable.from_rows(_schema(), ROWS, values_per_page=4)
        scanned = list(table.merge_scan(["k", "value"], BufferPool(32)))
        assert len(scanned) == 12
        position, row = scanned[3]
        assert position == 3
        assert row == (3, None, 30)  # unrequested column is None

    def test_merge_scan_reads_only_requested_pages(self):
        stats = IOStats()
        table = ColumnStoreTable.from_rows(_schema(), ROWS, values_per_page=4)
        list(table.merge_scan(["k"], BufferPool(32, stats)))
        assert stats.disk_reads == table.column_heaps["k"].page_count

    def test_pages_for_columns_counts_io_volume(self):
        table = ColumnStoreTable.from_rows(_schema(), ROWS, values_per_page=4)
        one = table.pages_for_columns(["k"])
        two = table.pages_for_columns(["k", "name"])
        assert two == 2 * one

    def test_unknown_column_rejected(self):
        table = ColumnStoreTable.from_rows(_schema(), ROWS)
        with pytest.raises(StorageError):
            list(table.merge_scan(["missing"], BufferPool(8)))

    def test_empty_column_list_rejected(self):
        table = ColumnStoreTable.from_rows(_schema(), ROWS)
        with pytest.raises(StorageError):
            list(table.merge_scan([], BufferPool(8)))


class TestDictionaryCodec:
    def test_roundtrip(self):
        codec = DictionaryCodec(["cherry", "apple", "banana", "apple"])
        for value in ("apple", "banana", "cherry"):
            assert codec.decode(codec.encode(value)) == value

    def test_order_preserving(self):
        codec = DictionaryCodec(["b", "d", "a", "c"])
        codes = [codec.encode(v) for v in ("a", "b", "c", "d")]
        assert codes == sorted(codes)

    def test_unknown_value_rejected(self):
        codec = DictionaryCodec(["x"])
        with pytest.raises(StorageError):
            codec.encode("y")
        assert codec.try_encode("y") is None

    def test_encode_bound_for_absent_values(self):
        codec = DictionaryCodec(["b", "d", "f"])
        # range predicate 'c' <= col <= 'e' maps onto codes of d only
        low = codec.encode_bound("c", "lower")
        high = codec.encode_bound("e", "upper")
        assert (low, high) == (codec.encode("d"), codec.encode("d"))

    def test_cardinality(self):
        assert DictionaryCodec(["a", "a", "b"]).cardinality == 2


class TestCompressedTable:
    def test_decompress_restores_logical_rows(self):
        table = Table.from_rows(_schema(), ROWS)
        compressed = compress_table(table, ["name"])
        logical = [
            compressed.decompress_row(row)
            for row in compressed.physical.heap.iter_rows()
        ]
        assert logical == ROWS

    def test_only_string_columns_compressible(self):
        table = Table.from_rows(_schema(), ROWS)
        with pytest.raises(StorageError):
            compress_table(table, ["value"])

    def test_compression_shrinks_strings(self):
        table = Table.from_rows(_schema(), ROWS)
        compressed = compress_table(table, ["name"])
        assert compressed.compression_ratio() > 1.0


class TestRangePartitioning:
    def test_partition_of(self):
        scheme = RangePartitioning("k", (10, 20))
        assert scheme.partition_of(5) == 0
        assert scheme.partition_of(10) == 1
        assert scheme.partition_of(25) == 2

    def test_boundaries_must_ascend(self):
        with pytest.raises(StorageError):
            RangePartitioning("k", (20, 10))

    def test_null_partition_value_rejected(self):
        with pytest.raises(StorageError):
            RangePartitioning("k", (10,)).partition_of(None)

    def test_interval_pruning(self):
        scheme = RangePartitioning("k", (10, 20, 30))
        assert scheme.partitions_for_interval(12, 18) == [1]
        assert scheme.partitions_for_interval(5, 25) == [0, 1, 2]
        assert scheme.partitions_for_interval(None, 9) == [0]
        assert scheme.partitions_for_interval(30, None) == [3]
        assert scheme.partitions_for_interval(None, None) == [0, 1, 2, 3]


class TestPartitionedTable:
    def _make(self):
        scheme = RangePartitioning("k", (4, 8))
        return PartitionedTable.from_rows(
            _schema(), scheme, ROWS, rows_per_page=4
        )

    def test_rows_routed_by_value(self):
        table = self._make()
        assert table.partition_row_counts() == [4, 4, 4]
        assert table.row_count == 12

    def test_offsets_and_spans(self):
        table = self._make()
        assert table.partition_offsets() == [0, 4, 8]
        assert table.partition_span(1) == (4, 8)

    def test_partitioning_column_must_exist(self):
        with pytest.raises(StorageError):
            PartitionedTable(_schema(), RangePartitioning("zz", (1,)))

    def test_bad_partition_span(self):
        with pytest.raises(StorageError):
            self._make().partition_span(9)
