"""Tests for the Warehouse facade and query router."""

import pytest

from repro.engine import QueryRouter, RoutingDecision, Warehouse
from repro.errors import QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery


def city_query(city):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        group_by=[ColumnRef("product", "p_category")],
        aggregates=[AggregateSpec("sum", "sales", "f_total")],
    )


class TestRouter:
    def test_star_queries_go_to_cjoin(self, tiny_star):
        _, star = tiny_star
        router = QueryRouter(star)
        assert router.route(city_query("lyon")) is RoutingDecision.CJOIN

    def test_force_baseline(self, tiny_star):
        _, star = tiny_star
        router = QueryRouter(star)
        decision = router.route(
            city_query("lyon"), force=RoutingDecision.BASELINE
        )
        assert decision is RoutingDecision.BASELINE

    def test_invalid_query_rejected(self, tiny_star):
        _, star = tiny_star
        router = QueryRouter(star)
        bad = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("missing", "=", 1)},
        )
        with pytest.raises(QueryError):
            router.route(bad)

    def test_explain(self, tiny_star):
        _, star = tiny_star
        router = QueryRouter(star)
        assert "cjoin" in router.explain(city_query("lyon"))


class TestWarehouse:
    def test_both_paths_agree(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        query = city_query("paris")
        cjoin_handle = warehouse.submit(query)
        baseline_handle = warehouse.submit(
            query, force=RoutingDecision.BASELINE
        )
        warehouse.run()
        assert cjoin_handle.results() == baseline_handle.results()
        assert cjoin_handle.results() == evaluate_star_query(query, catalog)

    def test_sql_round_trip(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        rows = warehouse.execute_sql(
            "SELECT s_city, SUM(f_total) FROM sales, store "
            "WHERE f_store = s_id GROUP BY s_city"
        )
        assert rows == [("lyon", 97), ("nice", 48), ("paris", 121)]

    def test_from_ssb_constructor(self):
        warehouse = Warehouse.from_ssb(scale_factor=0.0002, seed=5)
        rows = warehouse.execute_sql(
            "SELECT COUNT(*) FROM lineorder, date WHERE lo_orderdate = d_datekey"
        )
        assert rows[0][0] == warehouse.catalog.table("lineorder").row_count

    def test_updates_rejected_when_disabled(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        with pytest.raises(QueryError):
            warehouse.apply_update(inserts=[(1, 10, 1, 5)])

    def test_snapshot_isolation_between_queries_and_updates(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, enable_updates=True)
        count_sql = "SELECT COUNT(*) FROM sales"
        before = warehouse.submit_sql(count_sql)
        snapshot_id = warehouse.apply_update(
            inserts=[(1, 10, 1, 5), (2, 20, 2, 60)]
        )
        after = warehouse.submit_sql(count_sql)
        warehouse.run()
        assert snapshot_id == 1
        assert before.results() == [(12,)]   # pre-update snapshot
        assert after.results() == [(14,)]    # sees the two inserts

    def test_deletes_respect_snapshots(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, enable_updates=True)
        warehouse.apply_update(deletes=[0, 1])
        rows = warehouse.execute_sql("SELECT COUNT(*) FROM sales")
        assert rows == [(10,)]

    def test_current_snapshot_id_tracks_commits(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star, enable_updates=True)
        assert warehouse.current_snapshot_id == 0
        warehouse.apply_update(inserts=[(3, 30, 1, 8)])
        assert warehouse.current_snapshot_id == 1

    def test_mixed_engines_one_run(self, tiny_star):
        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        handles = [
            warehouse.submit(city_query("lyon")),
            warehouse.submit(city_query("nice"), force=RoutingDecision.BASELINE),
            warehouse.submit(city_query("paris")),
        ]
        warehouse.run()
        for handle in handles:
            assert handle.done
