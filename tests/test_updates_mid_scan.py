"""Updates committed while queries are mid-scan (section 3.5).

The hard case for the continuous-scan model: a transaction commits
inserts/deletes while a query is halfway around the fact table.  The
query's snapshot must shield it completely — it sees neither new rows
(even those appended *ahead* of its scan position) nor the resurrection
of rows deleted after its snapshot.
"""

import dataclasses

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.engine import Warehouse
from repro.query.aggregates import AggregateSpec
from repro.query.star import StarQuery
from repro.storage.mvcc import TransactionManager, VersionedTable
from tests.conftest import make_tiny_star


def count_query(snapshot_id):
    return dataclasses.replace(
        StarQuery.build(
            "sales",
            aggregates=[
                AggregateSpec("count"),
                AggregateSpec("sum", "sales", "f_qty"),
            ],
        ),
        snapshot_id=snapshot_id,
    )


def test_insert_ahead_of_scan_position_is_invisible():
    catalog, star = make_tiny_star()
    fact = catalog.table("sales")
    versioned = VersionedTable(fact)
    transactions = TransactionManager()
    operator = CJoinOperator(
        catalog,
        star,
        versioned_fact=versioned,
        executor_config=ExecutorConfig(batch_size=3),
    )
    handle = operator.submit(count_query(snapshot_id=0))
    operator.executor.step()  # scan is now a few tuples in
    # rows appended now sit AHEAD of the scan cursor: the scan will
    # reach them this cycle, but snapshot 0 must filter them out
    transactions.commit(
        versioned, inserts=[(1, 10, 100, 1), (2, 20, 100, 1)]
    )
    operator.run_until_drained()
    assert handle.results() == [(12, 27)]  # the original table only


def test_delete_behind_and_ahead_of_scan_position():
    catalog, star = make_tiny_star()
    fact = catalog.table("sales")
    versioned = VersionedTable(fact)
    transactions = TransactionManager()
    operator = CJoinOperator(
        catalog,
        star,
        versioned_fact=versioned,
        executor_config=ExecutorConfig(batch_size=3),
    )
    old_query = operator.submit(count_query(snapshot_id=0))
    operator.executor.step()  # a few tuples consumed
    # delete one row already scanned (position 0) and one not yet
    # scanned (position 11); the in-flight snapshot-0 query must still
    # count both, a new snapshot-1 query must count neither
    transactions.commit(versioned, deletes=[0, 11])
    new_query = operator.submit(count_query(snapshot_id=1))
    operator.run_until_drained()
    assert old_query.results() == [(12, 27)]
    assert new_query.results() == [(10, 27 - 2 - 1)]  # qty 2 and 1 removed


def test_interleaved_update_stream_through_warehouse():
    catalog, star = make_tiny_star()
    warehouse = Warehouse(catalog, star, enable_updates=True)
    observed = []
    for round_index in range(4):
        handle = warehouse.submit_sql("SELECT COUNT(*) FROM sales")
        warehouse.apply_update(
            inserts=[(1, 10, 1, 5)], deletes=[round_index]
        )
        observed.append(handle)
    warehouse.run()
    # query k was submitted when k inserts and k deletes had committed
    for k, handle in enumerate(observed):
        assert handle.results() == [(12,)], k  # +k inserts -k deletes

    final = warehouse.execute_sql("SELECT COUNT(*) FROM sales")
    assert final == [(12,)]
    # but the composition changed: 4 original rows replaced
    totals = warehouse.execute_sql("SELECT SUM(f_qty) FROM sales")
    original_qty = 27
    removed = 2 + 1 + 5 + 3  # f_qty of rows 0..3
    assert totals == [(original_qty - removed + 4 * 1,)]
