"""Batch kernels vs reference loops: whole-pipeline equivalence.

The kernels (DESIGN.md section 14) are a raw-speed re-expression of
the batched pipeline's hot loops — for every workload, kernel mode,
batch size, and admission interleaving they must produce results
byte-identical to the batched reference loops (``kernel='off'``) and
to the tuple-at-a-time path.  These property tests drive all paths
over randomized SSB workloads and the hand-checkable tiny star,
including the degenerate batches (empty tables, batches whose rows
all drop at one Filter) and the forced no-numpy probe.
"""

from __future__ import annotations

import importlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cjoin import CJoinOperator, kernels
from repro.cjoin.executor import ExecutorConfig
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import ColumnRef, StarQuery
from repro.ssb.queries import ssb_workload_generator
from tests.conftest import make_tiny_star

#: every way to run the batched executor; 'off' is the reference
KERNEL_MODES = ("off", "python", "auto") + (
    ("numpy",) if kernels.HAS_NUMPY else ()
)


def _run_all(catalog, star, queries, config):
    operator = CJoinOperator(catalog, star, executor_config=config)
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    return [handle.results() for handle in handles]


def _batched(batch_size, kernel):
    return ExecutorConfig(
        execution="batched", batch_size=batch_size, kernel=kernel
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=10),
    selectivity=st.sampled_from([0.02, 0.1, 0.4]),
    batch_size=st.sampled_from([1, 3, 64, 256]),
)
def test_kernel_modes_equivalent_on_random_workloads(
    ssb_small, seed, count, selectivity, batch_size
):
    """Every kernel mode matches the tuple path on random workloads."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=seed, catalog=catalog).generate(
        count, selectivity=selectivity
    )
    reference = _run_all(
        catalog, star, queries, ExecutorConfig(batch_size=batch_size)
    )
    for mode in KERNEL_MODES:
        assert (
            _run_all(catalog, star, queries, _batched(batch_size, mode))
            == reference
        ), f"kernel={mode!r} diverged"


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    steps_between=st.integers(min_value=0, max_value=7),
    batch_size=st.sampled_from([2, 5, 64]),
)
def test_mid_scan_admission_equivalent_under_kernels(
    ssb_small, seed, steps_between, batch_size
):
    """Kernels respect control-tuple seams exactly like the loops."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=seed, catalog=catalog).generate(
        4, selectivity=0.1
    )

    def staggered(config):
        operator = CJoinOperator(catalog, star, executor_config=config)
        handles = []
        for query in queries:
            handles.append(operator.submit(query))
            for _ in range(steps_between):
                operator.executor.step()
        operator.run_until_drained()
        return [handle.results() for handle in handles]

    reference = staggered(_batched(batch_size, "off"))
    for mode in KERNEL_MODES[1:]:
        assert staggered(_batched(batch_size, mode)) == reference


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_all_rows_dropped_at_one_filter(mode):
    """A predicate matching nothing drops every batch in full.

    Exercises the kernel's all-dropped compaction (``replace_live``
    with an empty survivor list) and the Distributor's empty-batch
    early-out; the query must still complete with zero rows.
    """
    catalog, star = make_tiny_star()
    matching = StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", "lyon")},
        aggregates=[AggregateSpec("count")],
    )
    empty = StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", "atlantis")},
        aggregates=[AggregateSpec("count")],
    )
    results = _run_all(
        catalog, star, [matching, empty], _batched(4, mode)
    )
    assert results[0] == [(5,)]  # lyon sales: rows 0, 1, 5, 8, 11
    assert results[1] == []


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_empty_fact_table_drains_clean(mode):
    """Zero fact batches: submission still completes everywhere."""
    from repro.catalog.catalog import Catalog
    from repro.catalog.schema import StarSchema
    from repro.storage.table import Table

    catalog, star = make_tiny_star()
    empty_catalog = Catalog()
    for name in ("store", "product"):
        empty_catalog.register_table(catalog.table(name))
    empty_catalog.register_table(
        Table.from_rows(star.fact, [], rows_per_page=4)
    )
    empty_star = StarSchema(fact=star.fact, dimensions=star.dimensions)
    empty_catalog.register_star(empty_star)
    query = StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", "lyon")},
        aggregates=[AggregateSpec("count")],
    )
    assert _run_all(
        empty_catalog, empty_star, [query], _batched(4, mode)
    ) == [[]]


def test_auto_without_numpy_matches_reference(ssb_small, monkeypatch):
    """The forced no-numpy probe: 'auto' degrades, results identical."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=7, catalog=catalog).generate(
        5, selectivity=0.1
    )
    reference = _run_all(catalog, star, queries, _batched(64, "off"))
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    importlib.reload(kernels)
    try:
        assert not kernels.HAS_NUMPY
        assert kernels.resolve("auto").name == "python"
        assert (
            _run_all(catalog, star, queries, _batched(64, "auto"))
            == reference
        )
    finally:
        monkeypatch.delenv("REPRO_NO_NUMPY")
        importlib.reload(kernels)
