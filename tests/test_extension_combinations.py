"""Combinations of extensions working together."""

from repro.cjoin.executor import ExecutorConfig
from repro.cjoin.partitioned import PartitionedCJoinOperator
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import StarQuery
from tests.test_cjoin_partitioned import partitioned_setup, count_query


def test_partitioned_operator_with_threaded_executor():
    """Partition pruning + the threaded horizontal executor."""
    catalog, star, partitioned = partitioned_setup()
    operator = PartitionedCJoinOperator(
        catalog,
        star,
        partitioned,
        executor_config=ExecutorConfig(
            mode="horizontal", stage_threads=(2,), batch_size=16
        ),
    )
    queries = [
        count_query(Between("f_qty", 1, 2)),
        count_query(),
    ]
    operator.start()
    try:
        handles = [operator.submit(query) for query in queries]
        operator.executor.wait_for(handles, timeout=60)
    finally:
        operator.stop()
    for query, handle in zip(queries, handles):
        assert handle.results() == evaluate_star_query(query, catalog)


def test_partitioned_operator_with_sort_aggregation():
    catalog, star, partitioned = partitioned_setup()
    operator = PartitionedCJoinOperator(
        catalog, star, partitioned, aggregation_mode="sort"
    )
    query = count_query(Between("f_qty", 2, 5))
    assert operator.execute(query) == evaluate_star_query(query, catalog)


def test_snapshots_with_adaptive_ordering():
    """MVCC virtual predicates + run-time filter reordering together."""
    import dataclasses

    from repro.cjoin import CJoinOperator
    from repro.cjoin.optimizer import DropRatePolicy
    from repro.query.predicate import Comparison
    from repro.storage.mvcc import TransactionManager, VersionedTable
    from tests.conftest import make_tiny_star

    catalog, star = make_tiny_star()
    versioned = VersionedTable(catalog.table("sales"))
    transactions = TransactionManager()
    transactions.commit(versioned, inserts=[(1, 10, 50, 250)])
    operator = CJoinOperator(
        catalog,
        star,
        versioned_fact=versioned,
        ordering_policy=DropRatePolicy(),
        executor_config=ExecutorConfig(
            batch_size=4, reoptimize_interval=8, profile_sample_rate=0
        ),
    )
    query = dataclasses.replace(
        StarQuery.build(
            "sales",
            dimension_predicates={
                "store": Comparison("s_city", "=", "lyon"),
                "product": Comparison("p_category", "=", "food"),
            },
            aggregates=[AggregateSpec("sum", "sales", "f_qty")],
        ),
        snapshot_id=1,
    )
    handle = operator.submit(query)
    operator.run_until_drained()
    assert handle.results() == evaluate_star_query(
        query, catalog, versioned_fact=versioned
    )
