"""Detailed checks of the DATE dimension's derived attributes."""

import datetime

import pytest

from repro.ssb.generator import CALENDAR_START, SSBGenerator
from repro.ssb.schema import date_schema


@pytest.fixture(scope="module")
def date_rows():
    return SSBGenerator(scale_factor=0.01, seed=1).date_rows()


@pytest.fixture(scope="module")
def columns():
    schema = date_schema()
    return {name: schema.column_index(name) for name in schema.column_names()}


def test_datekeys_are_consecutive_calendar_days(date_rows, columns):
    previous = None
    for row in date_rows:
        key = row[columns["d_datekey"]]
        day = datetime.date(key // 10000, key % 10000 // 100, key % 100)
        if previous is not None:
            assert day - previous == datetime.timedelta(days=1)
        previous = day
    first = date_rows[0][columns["d_datekey"]]
    assert first == int(CALENDAR_START.strftime("%Y%m%d"))


def test_year_month_fields_consistent(date_rows, columns):
    for row in date_rows:
        key = row[columns["d_datekey"]]
        assert row[columns["d_year"]] == key // 10000
        assert row[columns["d_yearmonthnum"]] == key // 100
        assert row[columns["d_monthnuminyear"]] == key % 10000 // 100
        assert row[columns["d_yearmonth"]] == (
            f"{row[columns['d_month']][:3]}{row[columns['d_year']]}"
        )


def test_weekday_flags_partition_the_week(date_rows, columns):
    for row in date_rows:
        weekday_flag = row[columns["d_weekdayfl"]]
        day_in_week = row[columns["d_daynuminweek"]]
        assert weekday_flag == (1 if day_in_week <= 5 else 0)


def test_selling_seasons_cover_every_month(date_rows, columns):
    seen = {}
    for row in date_rows:
        seen[row[columns["d_monthnuminyear"]]] = row[
            columns["d_sellingseason"]
        ]
    assert seen[12] == "Christmas" and seen[1] == "Christmas"
    assert seen[3] == "Spring"
    assert seen[6] == "Summer"
    assert seen[9] == "Fall"
    assert seen[11] == "Winter"


def test_holiday_flags(date_rows, columns):
    holidays = [
        row for row in date_rows if row[columns["d_holidayfl"]] == 1
    ]
    assert holidays, "calendar should contain holidays"
    for row in holidays:
        key = row[columns["d_datekey"]]
        assert (key % 10000 // 100, key % 100) in {
            (1, 1), (2, 14), (7, 4), (11, 25), (12, 24), (12, 25), (12, 31),
        }


def test_day_numbers_within_bounds(date_rows, columns):
    for row in date_rows:
        assert 1 <= row[columns["d_daynuminweek"]] <= 7
        assert 1 <= row[columns["d_daynuminmonth"]] <= 31
        assert 1 <= row[columns["d_daynuminyear"]] <= 366
        assert 1 <= row[columns["d_weeknuminyear"]] <= 53
