"""The shipped examples must keep running end to end.

Each example is executed in-process (fresh __main__ namespace); any
exception or assertion inside an example fails the build.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_the_documented_eight():
    assert EXAMPLES == [
        "client_session.py",
        "concurrent_analytics.py",
        "galaxy_and_partitions.py",
        "live_dashboard.py",
        "quickstart.py",
        "remote_client.py",
        "streaming_ingest.py",
        "updates_and_snapshots.py",
    ]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs_cleanly(example, capsys):
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"
