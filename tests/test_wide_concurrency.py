"""Wide-concurrency stress on the real pipeline: 128 queries at once.

Exercises multi-word bit-vectors (128 bits = 2 machine words), dense
distributor routing, and admission at scale; verifies a sample of
results and the single-scan property.
"""

from repro.cjoin import CJoinOperator
from repro.query.reference import evaluate_star_query
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator


def test_128_concurrent_queries_share_one_scan():
    catalog, star = load_ssb(scale_factor=0.0002, seed=2)
    generator = ssb_workload_generator(seed=8, catalog=catalog)
    queries = generator.generate(128, selectivity=0.3)
    operator = CJoinOperator(catalog, star, max_concurrent=128)
    handles = [operator.submit(query) for query in queries]
    assert operator.manager.allocator.max_id == 128
    operator.run_until_drained()

    fact_rows = catalog.table("lineorder").row_count
    assert operator.stats.tuples_scanned <= fact_rows + 1
    # verify a deterministic sample against the reference evaluator
    for index in (0, 17, 63, 64, 101, 127):
        assert handles[index].results() == evaluate_star_query(
            queries[index], catalog
        ), index
    # every handle completed with *some* canonical result
    assert all(handle.done for handle in handles)


def test_probe_cost_stays_bounded_at_width_128():
    """One probe per filter per tuple even with 128 registered queries."""
    catalog, star = load_ssb(scale_factor=0.0002, seed=2)
    generator = ssb_workload_generator(seed=8, catalog=catalog)
    operator = CJoinOperator(catalog, star, max_concurrent=128)
    for query in generator.generate(128, selectivity=0.3):
        operator.submit(query)
    operator.run_until_drained()
    filter_count = 4  # SSB dimensions
    assert operator.stats.probes_per_tuple <= filter_count
