"""Property: every storage representation answers queries identically.

Row store, column store (CJOIN merge-scan), and dictionary-compressed
storage must be interchangeable — same random data, same random star
queries, same results.
"""

from hypothesis import given, settings

from repro.catalog.catalog import Catalog
from repro.cjoin import CJoinOperator
from repro.cjoin.columnstore import ColumnStoreCJoinOperator, fact_columns_needed
from repro.query.reference import evaluate_star_query
from repro.storage.column import ColumnStoreTable
from repro.storage.compression import (
    DecompressingContinuousScan,
    compress_table,
)
from tests.test_properties import star_queries, warehouses


def _column_catalog(catalog, star):
    """Clone ``catalog`` with the fact table stored column-wise."""
    fact = catalog.table(star.fact.name)
    column_fact = ColumnStoreTable.from_rows(
        star.fact, fact.all_rows(), values_per_page=4
    )
    clone = Catalog()
    for name in star.dimension_names():
        clone.register_table(catalog.table(name))
    clone.register_table(column_fact)
    clone.register_star(star)
    return clone, column_fact


@settings(max_examples=30, deadline=None)
@given(warehouse=warehouses(), query=star_queries())
def test_column_store_cjoin_equals_row_store(warehouse, query):
    catalog, star = warehouse
    expected = evaluate_star_query(query, catalog)
    column_catalog, column_fact = _column_catalog(catalog, star)
    operator = ColumnStoreCJoinOperator(
        column_catalog,
        star,
        column_fact,
        scanned_columns=fact_columns_needed(query, star)
        | {fk.column for fk in star.fact.foreign_keys},
    )
    assert operator.execute(query) == expected


@settings(max_examples=30, deadline=None)
@given(warehouse=warehouses(), query=star_queries())
def test_compressed_fact_cjoin_equals_row_store(warehouse, query):
    catalog, star = warehouse
    expected = evaluate_star_query(query, catalog)
    fact = catalog.table(star.fact.name)
    if fact.row_count == 0:
        return  # compression of an empty table is trivial; skip
    compressed = compress_table(fact, [])  # codecs optional: none here
    operator = CJoinOperator(catalog, star)
    operator.scan = DecompressingContinuousScan(
        compressed, operator.buffer_pool
    )
    operator.preprocessor.scan = operator.scan
    assert operator.execute(query) == expected
