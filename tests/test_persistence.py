"""Durability subsystem tests (DESIGN.md section 16).

Three layers of adversity, in escalating order:

1. **Round-trip properties** (hypothesis): the catalog — schemas,
   rows with exact value types across every column codec, the star
   topology, and the ingest generation counter — survives
   save → open bit-exact.
2. **Crash matrix** (``os._exit`` subprocess harness,
   ``persist_crash_child.py``): the process dies at every
   ordering-sensitive checkpoint of a WAL append and a snapshot save;
   recovery must keep every acked batch and never surface a torn one.
3. **Torn-write sweep**: the WAL is truncated at *every byte offset*
   of its final record; replay must recover exactly the longest valid
   prefix and never apply a partial batch.
"""

from __future__ import annotations

import os
import shutil
import struct
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Warehouse
from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.errors import PersistenceError
from repro.storage.persist import (
    DurabilityManager,
    decode_column,
    encode_column,
    has_snapshot,
    read_wal,
)
from repro.storage.table import Table

from tests.conftest import make_tiny_star

COUNT_SQL = "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id"

CHILD = os.path.join(os.path.dirname(__file__), "persist_crash_child.py")


def child_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def run_child(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, CHILD, *args],
        capture_output=True,
        text=True,
        env=child_env(),
        timeout=60,
    )


def fact_totals(warehouse) -> list[int]:
    """All f_total values in the fact table (markers included)."""
    table = warehouse.catalog.table(warehouse.star.fact.name)
    position = table.schema.column_index("f_total")
    return [row[position] for row in table.all_rows()]


# ----------------------------------------------------------------------
# 1. Round-trip properties
# ----------------------------------------------------------------------
# Values every codec must round-trip with exact types: machine ints
# (i64), beyond-int64 ints and mixed columns (pickle), floats (f64),
# low-cardinality strings (dict), NULLs.
VALUE = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.integers(min_value=2**63, max_value=2**70),
    st.floats(allow_nan=False),
    st.sampled_from(["lyon", "paris", "nice", ""]),
    st.text(max_size=8),
    st.none(),
    st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(VALUE, max_size=64))
def test_column_codec_round_trip_bit_exact(values):
    kind, blob, table = encode_column(values)
    decoded = decode_column(kind, blob, table, len(values))
    assert decoded == values
    # == alone accepts 1 == 1.0 == True; durability means exact types
    assert [type(v) for v in decoded] == [type(v) for v in values]


@st.composite
def star_dataset(draw):
    """A small two-table star with draw-controlled column contents."""
    n_dim = draw(st.integers(min_value=1, max_value=6))
    n_fact = draw(st.integers(min_value=0, max_value=24))
    cities = draw(st.lists(st.text(max_size=6), min_size=1, max_size=4))
    dim_rows = [
        (key, draw(st.sampled_from(cities)), draw(st.floats(allow_nan=False)))
        for key in range(1, n_dim + 1)
    ]
    fact_rows = [
        (
            draw(st.integers(min_value=1, max_value=n_dim)),
            draw(st.one_of(st.none(), st.integers(-(2**64), 2**64))),
            draw(st.floats(allow_nan=False)),
        )
        for _ in range(n_fact)
    ]
    return dim_rows, fact_rows


@settings(max_examples=25, deadline=None)
@given(star_dataset(), st.integers(min_value=0, max_value=5))
def test_catalog_round_trip_bit_exact(tmp_path_factory, dataset, applies):
    dim_rows, fact_rows = dataset
    dim = TableSchema(
        "dim",
        [
            Column("d_id", DataType.INT),
            Column("d_city", DataType.STRING),
            Column("d_score", DataType.FLOAT),
        ],
        primary_key="d_id",
    )
    fact = TableSchema(
        "fact",
        [
            Column("f_dim", DataType.INT),
            Column("f_big", DataType.INT),
            Column("f_value", DataType.FLOAT),
        ],
        foreign_keys=[ForeignKey("f_dim", "dim", "d_id")],
    )
    star = StarSchema(fact=fact, dimensions={"dim": dim})
    catalog = Catalog()
    catalog.register_table(Table.from_rows(dim, dim_rows, rows_per_page=4))
    catalog.register_table(Table.from_rows(fact, fact_rows, rows_per_page=4))
    catalog.register_star(star)

    data_dir = tmp_path_factory.mktemp("roundtrip")
    manager = DurabilityManager(data_dir)
    manager.save_snapshot(
        catalog, star, ingest_generation=applies, snapshot_id=0
    )
    loaded_catalog, loaded_star, replay = DurabilityManager(data_dir).load()

    assert loaded_catalog.table_names() == catalog.table_names()
    for name in catalog.table_names():
        original, loaded = catalog.table(name), loaded_catalog.table(name)
        assert loaded.all_rows() == original.all_rows()
        assert [
            [type(v) for v in row] for row in loaded.all_rows()
        ] == [[type(v) for v in row] for row in original.all_rows()]
        assert loaded.heap.rows_per_page == original.heap.rows_per_page
        assert loaded.schema.primary_key == original.schema.primary_key
        assert [
            (c.name, c.dtype) for c in loaded.schema.columns
        ] == [(c.name, c.dtype) for c in original.schema.columns]
    assert loaded_star.fact.name == star.fact.name
    assert loaded_star.dimension_names() == star.dimension_names()
    # the generation counter the snapshot carries survives verbatim
    assert replay.generation == applies
    assert replay.wal_records == 0


def test_warehouse_generation_counter_survives(tmp_path):
    """save/open keeps the ingest generation counting monotonically."""
    catalog, star = make_tiny_star()
    data_dir = str(tmp_path / "wh")
    warehouse = Warehouse(catalog, star, data_dir=data_dir)
    for marker in (2001, 2002, 2003):
        warehouse.ingest(fact_rows=[(1, 10, 1, marker)])
        warehouse.apply_pending_ingest()
    assert warehouse.ingest_buffer.generation == 3
    warehouse.close()

    reopened = Warehouse.open(data_dir)
    assert reopened.ingest_buffer.generation == 3
    ticket = reopened.ingest(fact_rows=[(1, 10, 1, 2004)])
    reopened.apply_pending_ingest()
    assert ticket.result(5)["generation"] == 4
    reopened.close()


def test_open_without_snapshot_raises(tmp_path):
    assert not has_snapshot(tmp_path)
    with pytest.raises(PersistenceError):
        Warehouse.open(str(tmp_path))


def test_checksum_mismatch_raises(tmp_path):
    catalog, star = make_tiny_star()
    data_dir = str(tmp_path / "wh")
    Warehouse(catalog, star, data_dir=data_dir).close()
    [col] = [
        name for name in os.listdir(data_dir) if name.startswith("sales-")
    ]
    path = os.path.join(data_dir, col)
    blob = bytearray(open(path, "rb").read())
    blob[0] ^= 0xFF
    open(path, "wb").write(bytes(blob))
    with pytest.raises(PersistenceError, match="checksum"):
        Warehouse.open(data_dir)


# ----------------------------------------------------------------------
# 2. Crash matrix (subprocess harness)
# ----------------------------------------------------------------------
def seed_warehouse(tmp_path) -> str:
    """A durable tiny-star warehouse on disk, cleanly closed."""
    catalog, star = make_tiny_star()
    data_dir = str(tmp_path / "wh")
    Warehouse(catalog, star, data_dir=data_dir).close()
    return data_dir


def acked_markers(result: subprocess.CompletedProcess) -> list[int]:
    return [
        int(line.split()[1])
        for line in result.stdout.splitlines()
        if line.startswith("ACKED ")
    ]


@pytest.mark.parametrize(
    "crash_point, crashing_batch_must_survive",
    [
        # nothing of the crashing batch reached the WAL: it is lost,
        # and losing it is correct — its ticket never acked
        ("wal:before-write", False),
        # frame written but not fsynced: may or may not survive; the
        # contract only says unacked, so either outcome is legal
        ("wal:before-sync", None),
        # fsync done, ack pending: the producer never saw the ack, but
        # the batch is durable — it MUST be there after recovery
        ("wal:after-sync", True),
    ],
)
def test_crash_during_wal_append(
    tmp_path, crash_point, crashing_batch_must_survive
):
    from tests.persist_crash_child import CRASH_MARKER

    data_dir = seed_warehouse(tmp_path)
    result = run_child("ingest", data_dir, crash_point, "2")
    assert result.returncode == 137, (result.stdout, result.stderr)
    acked = acked_markers(result)
    assert acked == [1001, 1002]

    recovered = Warehouse.open(data_dir)
    totals = fact_totals(recovered)
    # the durability contract: every acked batch survives the crash
    for marker in acked:
        assert totals.count(marker) == 1
    survived = totals.count(CRASH_MARKER)
    if crashing_batch_must_survive is True:
        assert survived == 1
    elif crashing_batch_must_survive is False:
        assert survived == 0
    else:
        assert survived in (0, 1)
    # replay continued the generation sequence past the acked batches
    assert recovered.ingest_buffer.generation >= len(acked)
    recovered.close()


@pytest.mark.parametrize(
    "crash_point",
    ["snapshot:table:sales", "snapshot:before-current", "snapshot:after-current"],
)
def test_crash_during_snapshot_save(tmp_path, crash_point):
    data_dir = seed_warehouse(tmp_path)
    result = run_child("snapshot", data_dir, crash_point)
    assert result.returncode == 137, (result.stdout, result.stderr)
    assert acked_markers(result) == [1001, 1002]

    # whichever side of the CURRENT flip the crash landed on, the
    # directory holds one complete snapshot and both acked batches
    recovered = Warehouse.open(data_dir)
    totals = fact_totals(recovered)
    assert totals.count(1001) == 1
    assert totals.count(1002) == 1
    assert (
        recovered.execute_sql(COUNT_SQL)[0][0] == 14
    ), "12 seeded rows + 2 acked ingest rows"
    recovered.close()


# ----------------------------------------------------------------------
# 3. Torn-write recovery
# ----------------------------------------------------------------------
def test_torn_wal_tail_truncated_at_every_offset(tmp_path):
    """Truncate the WAL at every byte of its final record.

    Replay must recover exactly the two complete records for every
    truncation point short of the full file, and never a partial
    third batch — the 2-row crashing batch appears with 0 rows or 2,
    never 1.
    """
    catalog, star = make_tiny_star()
    master = str(tmp_path / "master")
    warehouse = Warehouse(catalog, star, data_dir=master)
    for marker in (3001, 3002):
        warehouse.ingest(fact_rows=[(1, 10, 1, marker)])
        warehouse.apply_pending_ingest()
    # final record: a two-row batch (so a torn half-batch would show)
    warehouse.ingest(fact_rows=[(1, 10, 1, 3999), (2, 20, 1, 3999)])
    warehouse.apply_pending_ingest()
    # simulate a crash: detach durability so close() cannot
    # checkpoint, leaving the WAL tail on disk
    warehouse.durability.close()
    warehouse.durability = None
    warehouse.close()

    [wal_name] = [n for n in os.listdir(master) if n.startswith("wal-")]
    wal_master = os.path.join(master, wal_name)
    records, valid_bytes = read_wal(Path(wal_master))
    assert len(records) == 3
    assert valid_bytes == os.path.getsize(wal_master)
    # walk the frame headers to the final record's start offset
    data = open(wal_master, "rb").read()
    frame_starts, position = [], 0
    while position < len(data):
        (length,) = struct.unpack_from(">I", data, position)
        frame_starts.append(position)
        position += 8 + length
    assert len(frame_starts) == 3
    final_start = frame_starts[-1]

    for offset in range(final_start, len(data) + 1):
        copy_dir = str(tmp_path / f"torn-{offset}")
        shutil.copytree(master, copy_dir)
        wal_copy = os.path.join(copy_dir, wal_name)
        with open(wal_copy, "r+b") as handle:
            handle.truncate(offset)
        recovered = Warehouse.open(copy_dir)
        totals = fact_totals(recovered)
        assert totals.count(3001) == 1
        assert totals.count(3002) == 1
        torn_rows = totals.count(3999)
        if offset == len(data):
            assert torn_rows == 2
        else:
            assert torn_rows == 0, (
                f"truncation at byte {offset} surfaced a partial batch"
            )
        recovered.close()
        shutil.rmtree(copy_dir)


def test_recovery_truncates_torn_tail_for_future_appends(tmp_path):
    """After recovering a torn WAL, new appends must land cleanly."""
    data_dir = seed_warehouse(tmp_path)
    warehouse = Warehouse.open(data_dir)
    warehouse.ingest(fact_rows=[(1, 10, 1, 4001)])
    warehouse.apply_pending_ingest()
    warehouse.durability.close()
    warehouse.durability = None  # crash: no checkpoint on close
    warehouse.close()
    [wal_name] = [n for n in os.listdir(data_dir) if n.startswith("wal-")]
    wal_path = os.path.join(data_dir, wal_name)
    # tear the record: chop the last 3 bytes
    size = os.path.getsize(wal_path)
    with open(wal_path, "r+b") as handle:
        handle.truncate(size - 3)

    recovered = Warehouse.open(data_dir)
    assert recovered.last_replay.wal_records == 0
    assert fact_totals(recovered).count(4001) == 0
    recovered.ingest(fact_rows=[(1, 10, 1, 4002)])
    recovered.apply_pending_ingest()
    recovered.durability.close()
    recovered.durability = None  # crash again before the checkpoint
    recovered.close()

    final = Warehouse.open(data_dir)
    assert fact_totals(final).count(4002) == 1
    assert final.last_replay.wal_records == 1
    final.close()
