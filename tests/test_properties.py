"""Property-based tests (hypothesis) on core invariants.

The centerpiece is engine equivalence: for random data and random
star queries, CJOIN, the baseline hash-join engine, and the naive
reference evaluator must produce identical results — including under
randomized admission interleavings.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import bitvec
from repro.baseline import QueryAtATimeEngine
from repro.catalog.catalog import Catalog
from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    StarSchema,
    TableSchema,
)
from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import (
    And,
    Between,
    Comparison,
    InList,
    Not,
    Or,
    TruePredicate,
    implied_interval,
)
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
CATEGORIES = ("red", "green", "blue")


def _star_schema() -> StarSchema:
    dim_a = TableSchema(
        "dima",
        [Column("a_id", DataType.INT), Column("a_cat", DataType.STRING),
         Column("a_num", DataType.INT)],
        primary_key="a_id",
    )
    dim_b = TableSchema(
        "dimb",
        [Column("b_id", DataType.INT), Column("b_num", DataType.INT)],
        primary_key="b_id",
    )
    fact = TableSchema(
        "fact",
        [
            Column("f_a", DataType.INT),
            Column("f_b", DataType.INT),
            Column("f_val", DataType.INT),
        ],
        foreign_keys=[
            ForeignKey("f_a", "dima", "a_id"),
            ForeignKey("f_b", "dimb", "b_id"),
        ],
    )
    return StarSchema(fact=fact, dimensions={"dima": dim_a, "dimb": dim_b})


@st.composite
def warehouses(draw):
    """A random populated catalog over the fixed two-dimension star."""
    star = _star_schema()
    a_count = draw(st.integers(min_value=1, max_value=6))
    b_count = draw(st.integers(min_value=1, max_value=4))
    dim_a_rows = [
        (
            i,
            draw(st.sampled_from(CATEGORIES)),
            draw(st.integers(min_value=0, max_value=20)),
        )
        for i in range(1, a_count + 1)
    ]
    dim_b_rows = [
        (i, draw(st.integers(min_value=0, max_value=20)))
        for i in range(1, b_count + 1)
    ]
    fact_count = draw(st.integers(min_value=0, max_value=40))
    fact_rows = [
        (
            draw(st.integers(min_value=1, max_value=a_count)),
            draw(st.integers(min_value=1, max_value=b_count)),
            draw(st.integers(min_value=-5, max_value=50)),
        )
        for _ in range(fact_count)
    ]
    catalog = Catalog()
    catalog.register_table(
        Table.from_rows(star.dimension("dima"), dim_a_rows, rows_per_page=3)
    )
    catalog.register_table(
        Table.from_rows(star.dimension("dimb"), dim_b_rows, rows_per_page=3)
    )
    catalog.register_table(
        Table.from_rows(star.fact, fact_rows, rows_per_page=4)
    )
    catalog.register_star(star)
    return catalog, star


@st.composite
def dim_a_predicates(draw):
    kind = draw(st.sampled_from(["true", "eq", "between", "in", "or", "not"]))
    if kind == "true":
        return TruePredicate()
    if kind == "eq":
        return Comparison("a_cat", "=", draw(st.sampled_from(CATEGORIES)))
    if kind == "between":
        low = draw(st.integers(min_value=0, max_value=20))
        high = draw(st.integers(min_value=low, max_value=20))
        return Between("a_num", low, high)
    if kind == "in":
        values = draw(
            st.sets(st.sampled_from(CATEGORIES), min_size=1, max_size=3)
        )
        return InList("a_cat", frozenset(values))
    if kind == "or":
        return Or(
            Comparison("a_num", "<", draw(st.integers(0, 20))),
            Comparison("a_cat", "=", draw(st.sampled_from(CATEGORIES))),
        )
    return Not(Comparison("a_num", ">", draw(st.integers(0, 20))))


@st.composite
def star_queries(draw):
    predicates = {}
    if draw(st.booleans()):
        predicates["dima"] = draw(dim_a_predicates())
    if draw(st.booleans()):
        low = draw(st.integers(min_value=0, max_value=20))
        predicates["dimb"] = Comparison("b_num", ">=", low)
    fact_predicate = None
    if draw(st.booleans()):
        fact_predicate = Comparison(
            "f_val", draw(st.sampled_from([">", "<=", "!="])),
            draw(st.integers(-5, 50)),
        )
    group_by = []
    if draw(st.booleans()):
        group_by.append(ColumnRef("dima", "a_cat"))
    if draw(st.booleans()):
        group_by.append(ColumnRef("dimb", "b_num"))
    aggregates = [AggregateSpec("count")]
    if draw(st.booleans()):
        aggregates.append(AggregateSpec("sum", "fact", "f_val"))
    if draw(st.booleans()):
        aggregates.append(
            AggregateSpec("min", "dima", "a_num"),
        )
    return StarQuery.build(
        "fact",
        dimension_predicates=predicates,
        fact_predicate=fact_predicate,
        group_by=group_by,
        aggregates=aggregates,
    )


# ----------------------------------------------------------------------
# Engine equivalence
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(warehouse=warehouses(), queries=st.lists(star_queries(), min_size=1, max_size=5))
def test_cjoin_baseline_reference_agree(warehouse, queries):
    catalog, star = warehouse
    expected = [evaluate_star_query(query, catalog) for query in queries]

    operator = CJoinOperator(catalog, star)
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    for query, handle, rows in zip(queries, handles, expected):
        assert handle.results() == rows

    engine = QueryAtATimeEngine(catalog, star, BufferPool(16))
    baseline_rows = engine.execute_concurrent(queries)
    assert baseline_rows == expected


@settings(max_examples=25, deadline=None)
@given(
    warehouse=warehouses(),
    queries=st.lists(star_queries(), min_size=2, max_size=4),
    gaps=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=3),
)
def test_cjoin_correct_under_interleaved_admission(warehouse, queries, gaps):
    """Queries admitted at arbitrary scan offsets still see exactly

    one full cycle each (the wrap-around finalization invariant).
    """
    catalog, star = warehouse
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(batch_size=3)
    )
    handles = []
    for index, query in enumerate(queries):
        handles.append(operator.submit(query))
        for _ in range(gaps[index % len(gaps)]):
            operator.executor.step()
    operator.run_until_drained()
    for query, handle in zip(queries, handles):
        assert handle.results() == evaluate_star_query(query, catalog)


# ----------------------------------------------------------------------
# Bit-vector algebra
# ----------------------------------------------------------------------
query_ids = st.integers(min_value=1, max_value=300)


@given(st.sets(query_ids, max_size=20))
def test_bitvec_roundtrip_set_iterate(ids):
    vector = 0
    for query_id in ids:
        vector = bitvec.set_bit(vector, query_id)
    assert set(bitvec.iter_query_ids(vector)) == ids
    assert bitvec.popcount(vector) == len(ids)


@given(st.sets(query_ids, max_size=20), query_ids)
def test_bitvec_clear_removes_exactly_one(ids, target):
    vector = 0
    for query_id in ids:
        vector = bitvec.set_bit(vector, query_id)
    cleared = bitvec.clear_bit(vector, target)
    assert set(bitvec.iter_query_ids(cleared)) == ids - {target}


@given(st.integers(min_value=0, max_value=2**80), st.integers(0, 80))
def test_bitvec_mask_idempotent(vector, width):
    masked = bitvec.mask_to_width(vector, width)
    assert bitvec.mask_to_width(masked, width) == masked
    assert masked <= bitvec.all_ones(width)


# ----------------------------------------------------------------------
# Implied intervals are always sound
# ----------------------------------------------------------------------
@st.composite
def int_predicates(draw, depth=0):
    if depth >= 2:
        kind = draw(st.sampled_from(["cmp", "between", "in"]))
    else:
        kind = draw(
            st.sampled_from(["cmp", "between", "in", "and", "or", "not"])
        )
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return Comparison("a_num", op, draw(st.integers(-10, 30)))
    if kind == "between":
        low = draw(st.integers(-10, 30))
        return Between("a_num", low, draw(st.integers(low, 30)))
    if kind == "in":
        return InList(
            "a_num",
            frozenset(
                draw(st.sets(st.integers(-10, 30), min_size=1, max_size=4))
            ),
        )
    if kind == "and":
        return And(
            draw(int_predicates(depth + 1)), draw(int_predicates(depth + 1))
        )
    if kind == "or":
        return Or(
            draw(int_predicates(depth + 1)), draw(int_predicates(depth + 1))
        )
    return Not(draw(int_predicates(depth + 1)))


_INTERVAL_SCHEMA = TableSchema("t", [Column("a_num", DataType.INT)])


@settings(max_examples=200)
@given(predicate=int_predicates(), value=st.integers(-15, 35))
def test_implied_interval_never_excludes_matching_values(predicate, value):
    if not predicate.bind(_INTERVAL_SCHEMA)((value,)):
        return
    low, high, low_inc, high_inc = implied_interval(predicate, "a_num")
    if low is not None:
        assert value >= low if low_inc else value > low
    if high is not None:
        assert value <= high if high_inc else value < high


# ----------------------------------------------------------------------
# Dictionary codec
# ----------------------------------------------------------------------
@given(st.lists(st.text(min_size=0, max_size=8), min_size=1, max_size=30))
def test_dictionary_codec_roundtrip_and_order(values):
    from repro.storage.compression import DictionaryCodec

    codec = DictionaryCodec(values)
    for value in values:
        assert codec.decode(codec.encode(value)) == value
    distinct = sorted(set(values))
    codes = [codec.encode(value) for value in distinct]
    assert codes == sorted(codes)


# ----------------------------------------------------------------------
# Continuous scan order stability
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=2, max_value=4),
)
def test_continuous_scan_cycles_are_identical(rows, rows_per_page, cycles):
    schema = TableSchema("t", [Column("k", DataType.INT)])
    table = Table.from_rows(
        schema, [(i,) for i in range(rows)], rows_per_page
    )
    from repro.storage.scan import ContinuousScan

    scan = ContinuousScan(table, BufferPool(4))
    first = [scan.next() for _ in range(rows)]
    for _ in range(cycles - 1):
        assert [scan.next() for _ in range(rows)] == first
