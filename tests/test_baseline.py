"""Tests for the query-at-a-time baseline engine."""

import pytest

from repro.baseline import (
    EngineProfile,
    HashJoinPipeline,
    QueryAtATimeEngine,
    order_dimensions_by_selectivity,
)
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats


def city_query(city):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        group_by=[ColumnRef("product", "p_category")],
        aggregates=[AggregateSpec("sum", "sales", "f_total")],
    )


class TestHashJoinPipeline:
    def test_single_query_matches_reference(self, tiny_star):
        catalog, star = tiny_star
        query = city_query("paris")
        plan = HashJoinPipeline(query, catalog, star, BufferPool(64))
        assert plan.execute() == evaluate_star_query(query, catalog)

    def test_wrapped_scan_start_is_result_invariant(self, tiny_star):
        catalog, star = tiny_star
        query = city_query("lyon")
        plan = HashJoinPipeline(query, catalog, star, BufferPool(64))
        for _ in plan.probe_pages(start_page=2):
            pass
        assert plan.results() == evaluate_star_query(query, catalog)

    def test_build_rows_counts_selected_dimension_tuples(self, tiny_star):
        catalog, star = tiny_star
        plan = HashJoinPipeline(
            city_query("lyon"), catalog, star, BufferPool(64)
        )
        plan.build()
        # 1 selected store + 4 products (implicit TRUE via group-by)
        assert plan.build_rows == 5


class TestJoinOrderOptimizer:
    def test_most_selective_dimension_first(self, tiny_star):
        catalog, _ = tiny_star
        query = StarQuery.build(
            "sales",
            dimension_predicates={
                "store": Comparison("s_city", "=", "lyon"),      # 1/3
                "product": Comparison("p_price", ">", 0),         # 4/4
            },
            aggregates=[AggregateSpec("count")],
        )
        assert order_dimensions_by_selectivity(query, catalog) == [
            "store",
            "product",
        ]


class TestConcurrentExecution:
    def test_results_in_submission_order(self, tiny_star):
        catalog, star = tiny_star
        engine = QueryAtATimeEngine(catalog, star, BufferPool(64))
        queries = [city_query(c) for c in ("lyon", "paris", "nice")]
        results = engine.execute_concurrent(queries, max_in_flight=2)
        for query, rows in zip(queries, results):
            assert rows == evaluate_star_query(query, catalog)

    def test_empty_workload(self, tiny_star):
        catalog, star = tiny_star
        engine = QueryAtATimeEngine(catalog, star, BufferPool(64))
        assert engine.execute_concurrent([]) == []

    def test_fact_pages_grow_linearly_with_queries(self, ssb_small, ssb_workload):
        """Each baseline query performs its own full fact scan."""
        catalog, star = ssb_small
        engine = QueryAtATimeEngine(catalog, star, BufferPool(64))
        engine.execute_concurrent(ssb_workload[:4], max_in_flight=4)
        fact_pages = catalog.table("lineorder").page_count
        assert engine.fact_pages_fetched == 4 * fact_pages

    def test_concurrent_scans_cause_random_io(self, ssb_small, ssb_workload):
        """The paper's core contention claim, observable in IOStats."""
        catalog, star = ssb_small
        solo_stats = IOStats()
        engine = QueryAtATimeEngine(
            catalog, star, BufferPool(4, solo_stats)
        )
        engine.execute_concurrent(ssb_workload[:1])
        concurrent_stats = IOStats()
        engine = QueryAtATimeEngine(
            catalog, star, BufferPool(4, concurrent_stats)
        )
        engine.execute_concurrent(ssb_workload[:6], max_in_flight=6)
        assert (
            concurrent_stats.sequential_fraction
            < solo_stats.sequential_fraction
        )

    def test_profiles(self):
        assert EngineProfile.system_x().shared_scans is False
        assert EngineProfile.postgresql().shared_scans is True

    def test_bad_max_in_flight(self, tiny_star):
        catalog, star = tiny_star
        engine = QueryAtATimeEngine(catalog, star, BufferPool(64))
        with pytest.raises(Exception):
            engine.execute_concurrent([city_query("lyon")], max_in_flight=0)

    def test_cjoin_reads_fewer_fact_pages_than_baseline(
        self, ssb_small, ssb_workload
    ):
        """The headline sharing effect on real storage counters."""
        from repro.cjoin import CJoinOperator

        catalog, star = ssb_small
        queries = ssb_workload[:6]

        baseline_stats = IOStats()
        engine = QueryAtATimeEngine(
            catalog, star, BufferPool(4, baseline_stats)
        )
        baseline_results = engine.execute_concurrent(queries, max_in_flight=6)

        cjoin_stats = IOStats()
        operator = CJoinOperator(
            catalog, star, buffer_pool=BufferPool(4, cjoin_stats)
        )
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()

        for rows, handle in zip(baseline_results, handles):
            assert rows == handle.results()
        assert cjoin_stats.disk_reads < baseline_stats.disk_reads / 2
