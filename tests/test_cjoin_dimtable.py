"""Unit tests for the shared dimension hash tables (paper section 3.2.1)."""

from repro import bitvec
from repro.catalog.schema import Column, DataType, TableSchema
from repro.cjoin.dimtable import DimensionHashTable


def _schema():
    return TableSchema(
        "d",
        [Column("id", DataType.INT), Column("label", DataType.STRING)],
        primary_key="id",
    )


def make_table():
    return DimensionHashTable(_schema())


class TestProbeSemantics:
    def test_miss_returns_complement_bitmap(self):
        table = make_table()
        table.mark_query_not_referencing(2)
        bits, row = table.probe(99)
        assert row is None
        assert bits == bitvec.bit_for_query(2)

    def test_hit_returns_entry_bits_and_row(self):
        table = make_table()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        bits, row = table.probe(5)
        assert row == (5, "five")
        assert bitvec.test_bit(bits, 1)

    def test_paper_defining_property(self):
        """probe[i]=1 iff (Qi references and selects delta) or Qi absent."""
        table = make_table()
        # Q1 references and selects row 5 only; Q2 does not reference
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(5, "five")])
        table.mark_query_not_referencing(2)
        hit_bits, _ = table.probe(5)
        miss_bits, _ = table.probe(6)
        assert bitvec.test_bit(hit_bits, 1)      # Q1 selects 5
        assert bitvec.test_bit(hit_bits, 2)      # Q2 doesn't reference
        assert not bitvec.test_bit(miss_bits, 1)  # Q1 doesn't select 6
        assert bitvec.test_bit(miss_bits, 2)     # Q2 doesn't reference


class TestSharedUnion:
    def test_union_of_two_queries(self):
        table = make_table()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(1, "a"), (2, "b")])
        table.mark_query_referencing(2)
        table.register_selected_rows(2, [(2, "b"), (3, "c")])
        assert table.tuple_count == 3
        assert table.bits_for_key(1) == bitvec.bit_for_query(1)
        assert table.bits_for_key(2) == bitvec.bit_for_query(1) | bitvec.bit_for_query(2)
        assert table.bits_for_key(3) == bitvec.bit_for_query(2)

    def test_new_entry_inherits_complement(self):
        """An entry inserted later carries non-referencing queries' bits."""
        table = make_table()
        table.mark_query_not_referencing(1)  # Q1 implicitly selects all
        table.mark_query_referencing(2)
        table.register_selected_rows(2, [(7, "x")])
        bits = table.bits_for_key(7)
        assert bitvec.test_bit(bits, 1)
        assert bitvec.test_bit(bits, 2)


class TestUnregister:
    def test_entries_garbage_collected(self):
        table = make_table()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(1, "a")])
        table.mark_query_referencing(2)
        table.register_selected_rows(2, [(1, "a"), (2, "b")])
        table.unregister_query(2)
        assert table.tuple_count == 1  # (2,'b') died with Q2
        assert table.bits_for_key(1) == bitvec.bit_for_query(1)

    def test_table_empties_when_last_query_leaves(self):
        table = make_table()
        table.mark_query_referencing(1)
        table.register_selected_rows(1, [(1, "a")])
        table.unregister_query(1)
        assert table.is_empty

    def test_id_reuse_is_clean(self):
        """After unregister, a reused id starts from a clean slate."""
        table = make_table()
        table.mark_query_not_referencing(1)  # Q1 gen-1: no reference
        table.mark_query_referencing(2)
        table.register_selected_rows(2, [(1, "a")])
        table.unregister_query(1)
        # id 1 reused by a query that DOES reference this dimension and
        # selects nothing
        table.mark_query_referencing(1)
        bits, _ = table.probe(1)
        assert not bitvec.test_bit(bits, 1)  # stale gen-1 bit must be gone
        miss_bits, _ = table.probe(99)
        assert not bitvec.test_bit(miss_bits, 1)

    def test_unregister_clears_complement_bit(self):
        table = make_table()
        table.mark_query_not_referencing(3)
        table.unregister_query(3)
        assert table.complement_bitmap == 0
