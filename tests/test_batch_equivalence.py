"""Batched fast path vs tuple-at-a-time: result equivalence.

The batched executor (DESIGN.md section 5) is a pure performance
transformation — for every workload, admission interleaving, update
schedule, and executor layout it must produce byte-identical results to
the reference tuple-at-a-time path.  These property tests drive both
paths over randomized SSB workloads, mid-scan admissions (the
control-tuple ordering hazard), and mid-scan updates under snapshot
isolation, asserting equality each time.
"""

from __future__ import annotations

import dataclasses

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.query.aggregates import AggregateSpec
from repro.query.star import StarQuery
from repro.ssb.queries import ssb_workload_generator
from repro.storage.mvcc import TransactionManager, VersionedTable
from tests.conftest import make_tiny_star


def _run_all(catalog, star, queries, config, **operator_kwargs):
    operator = CJoinOperator(
        catalog, star, executor_config=config, **operator_kwargs
    )
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    return [handle.results() for handle in handles]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    count=st.integers(min_value=1, max_value=10),
    selectivity=st.sampled_from([0.02, 0.1, 0.4]),
    batch_size=st.sampled_from([1, 3, 64, 256]),
)
def test_random_workloads_equivalent(
    ssb_small, seed, count, selectivity, batch_size
):
    """Random SSB workloads: identical results at every batch size."""
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=seed, catalog=catalog).generate(
        count, selectivity=selectivity
    )
    tuple_results = _run_all(
        catalog, star, queries, ExecutorConfig(batch_size=batch_size)
    )
    batched_results = _run_all(
        catalog,
        star,
        queries,
        ExecutorConfig(execution="batched", batch_size=batch_size),
    )
    assert tuple_results == batched_results


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    steps_between=st.integers(min_value=0, max_value=7),
    batch_size=st.sampled_from([2, 5, 64]),
)
def test_mid_scan_admission_equivalent(
    ssb_small, seed, steps_between, batch_size
):
    """Queries admitted mid-scan (control tuples between batches).

    Stepping the executor between submissions puts QueryStart/QueryEnd
    control tuples at arbitrary points of the stream; the batched path
    must chop fact batches around them exactly like the tuple path.
    """
    catalog, star = ssb_small
    queries = ssb_workload_generator(seed=seed, catalog=catalog).generate(
        4, selectivity=0.1
    )

    def staged_run(execution):
        operator = CJoinOperator(
            catalog,
            star,
            executor_config=ExecutorConfig(
                execution=execution, batch_size=batch_size
            ),
        )
        handles = []
        for query in queries:
            handles.append(operator.submit(query))
            for _ in range(steps_between):
                operator.executor.step()
        operator.run_until_drained()
        return [handle.results() for handle in handles]

    assert staged_run("tuple") == staged_run("batched")


@settings(max_examples=15, deadline=None)
@given(
    delete_positions=st.lists(
        st.integers(min_value=0, max_value=11), max_size=4, unique=True
    ),
    insert_count=st.integers(min_value=0, max_value=3),
    pre_steps=st.integers(min_value=0, max_value=4),
    batch_size=st.sampled_from([3, 7, 64]),
)
def test_updates_mid_scan_equivalent(
    delete_positions, insert_count, pre_steps, batch_size
):
    """Updates committed mid-scan under snapshot isolation.

    An old-snapshot query straddling the commit and a new-snapshot
    query admitted after it must both see exactly the same rows under
    either execution granularity (the section 3.5 virtual predicate is
    evaluated per row in both preprocessor paths).
    """

    def count_query(snapshot_id):
        return dataclasses.replace(
            StarQuery.build(
                "sales",
                aggregates=[
                    AggregateSpec("count"),
                    AggregateSpec("sum", "sales", "f_qty"),
                ],
            ),
            snapshot_id=snapshot_id,
        )

    def staged_run(execution):
        catalog, star = make_tiny_star()
        versioned = VersionedTable(catalog.table("sales"))
        transactions = TransactionManager()
        operator = CJoinOperator(
            catalog,
            star,
            versioned_fact=versioned,
            executor_config=ExecutorConfig(
                execution=execution, batch_size=batch_size
            ),
        )
        old_handle = operator.submit(count_query(snapshot_id=0))
        for _ in range(pre_steps):
            operator.executor.step()
        transactions.commit(
            versioned,
            inserts=[(1, 10, 100 + i, 1) for i in range(insert_count)],
            deletes=sorted(delete_positions),
        )
        new_handle = operator.submit(count_query(snapshot_id=1))
        operator.run_until_drained()
        return old_handle.results(), new_handle.results()

    assert staged_run("tuple") == staged_run("batched")


def test_threaded_batched_equivalent(ssb_small, ssb_workload):
    """Threaded stages consume batches; results match the sync path."""
    catalog, star = ssb_small
    sync_results = _run_all(
        catalog, star, ssb_workload, ExecutorConfig()
    )
    operator = CJoinOperator(
        catalog,
        star,
        executor_config=ExecutorConfig(
            mode="horizontal", stage_threads=(2,), execution="batched"
        ),
    )
    operator.start()
    try:
        handles = [operator.submit(query) for query in ssb_workload]
        operator.executor.wait_for(handles)
    finally:
        operator.stop()
    assert [handle.results() for handle in handles] == sync_results


def test_sort_aggregation_batched_equivalent(ssb_small, ssb_workload):
    """The sort-based operator's consume_batch matches hash results."""
    catalog, star = ssb_small
    hash_results = _run_all(
        catalog, star, ssb_workload, ExecutorConfig(execution="batched")
    )
    sort_results = _run_all(
        catalog,
        star,
        ssb_workload,
        ExecutorConfig(execution="batched"),
        aggregation_mode="sort",
    )
    assert hash_results == sort_results


def test_batch_liveness_views_stay_in_sync(ssb_small, ssb_workload):
    """The batch's live list and alive bit-mask are the same set.

    Filters maintain both views (the list drives the hot loops, the
    mask is the bulk-combinable summary); a real filter chain must
    keep them consistent at every stage.
    """
    from repro import bitvec
    from repro.cjoin.batch import FactBatch

    catalog, star = ssb_small
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(execution="batched")
    )
    for query in ssb_workload[:6]:
        operator.submit(query)
    preprocessor = operator.pipeline.preprocessor
    checked_batches = 0
    for _ in range(20):
        for item in preprocessor.next_batched_items(64):
            if not isinstance(item, FactBatch):
                operator.pipeline.process_item(item)
                continue
            assert item.alive == bitvec.pack_positions(item.live)
            for stage_filter in operator.pipeline.filters:
                stage_filter.process_batch(item)
                assert item.alive == bitvec.pack_positions(item.live)
                assert item.live_count == bitvec.popcount(item.alive)
            checked_batches += 1
            operator.pipeline.distributor.process(item)
        operator.manager.process_finished()
    assert checked_batches > 0


def test_batched_probe_accounting(ssb_small, ssb_workload):
    """The batched path shares probes: stats stay bounded per tuple.

    The paper's section 3.2.3 bound — at most one probe per dimension
    per scanned tuple — must survive vectorization (the batch path can
    only do fewer, via the batch-level skip on the bit-vector union).
    """
    catalog, star = ssb_small
    operator = CJoinOperator(
        catalog, star, executor_config=ExecutorConfig(execution="batched")
    )
    for query in ssb_workload:
        operator.submit(query)
    operator.run_until_drained()
    stats = operator.stats
    assert stats.tuples_scanned > 0
    dimensions = len(star.dimensions)
    assert stats.probes_per_tuple <= dimensions
