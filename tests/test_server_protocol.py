"""The wire protocol (docs/PROTOCOL.md): framing, codecs, violations.

Unit tests for the transport layer in ``repro/server/protocol.py``
(round trips, truncation, oversize, malformed JSON) plus live-server
tests driving raw sockets through the normative violation handling of
docs/PROTOCOL.md section 7: a server must answer protocol violations
with an ERROR frame where the stream still permits one, and must close
the connection afterwards — without disturbing other connections.
"""

from __future__ import annotations

import io
import socket
import struct

import pytest

import repro
from repro.catalog.schema import DataType
from repro.engine import Warehouse
from repro.server import WarehouseServer, protocol
from repro.server.protocol import ProtocolError


class TestFraming:
    def test_round_trip(self):
        payload = {"type": "execute", "sql": "SELECT 1", "params": [1, "a"]}
        encoded = protocol.encode_frame(payload)
        assert protocol.read_frame(io.BytesIO(encoded)) == payload

    def test_many_frames_on_one_stream(self):
        frames = [{"type": "hello", "n": index} for index in range(5)]
        stream = io.BytesIO(
            b"".join(protocol.encode_frame(frame) for frame in frames)
        )
        assert [protocol.read_frame(stream) for _ in frames] == frames
        assert protocol.read_frame(stream) is None  # clean EOF

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body_raises(self):
        encoded = protocol.encode_frame({"type": "hello"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(io.BytesIO(encoded[:-2]))

    def test_oversized_length_prefix_raises(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="limit"):
            protocol.read_frame(io.BytesIO(header))

    def test_invalid_json_body_raises(self):
        body = b"not json at all"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.read_frame(stream)

    def test_non_object_body_raises(self):
        body = b"[1, 2, 3]"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="object"):
            protocol.read_frame(stream)

    def test_object_without_type_raises(self):
        body = b'{"sql": "SELECT 1"}'
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="type"):
            protocol.read_frame(stream)

    def test_encode_rejects_untyped_payloads(self):
        with pytest.raises(ProtocolError, match="type"):
            protocol.encode_frame({"sql": "SELECT 1"})
        with pytest.raises(ProtocolError, match="type"):
            protocol.encode_frame(["hello"])


class TestCodecs:
    def test_description_round_trip(self):
        description = (
            ("s_city", DataType.STRING, None, None, None, None, False),
            ("orders", DataType.INT, None, None, None, None, False),
        )
        encoded = protocol.encode_description(description)
        assert encoded == [
            ["s_city", "STRING", None, None, None, None, False],
            ["orders", "INT", None, None, None, None, False],
        ]
        assert protocol.decode_description(encoded) == description
        assert protocol.encode_description(None) is None
        assert protocol.decode_description(None) is None

    def test_description_unknown_type_code_raises(self):
        with pytest.raises(ProtocolError, match="description"):
            protocol.decode_description(
                [["x", "NOPE", None, None, None, None, False]]
            )

    def test_rows_round_trip(self):
        assert protocol.decode_rows([[1, "a"], [2, None]]) == [
            (1, "a"),
            (2, None),
        ]
        with pytest.raises(ProtocolError, match="rows"):
            protocol.decode_rows("nope")

    def test_error_payload_clamps_unknown_classes(self):
        payload = protocol.error_payload("ProgrammingError", "bad sql")
        assert payload["error"] == {
            "class": "ProgrammingError",
            "message": "bad sql",
        }
        clamped = protocol.error_payload("SecretInternalError", "boom")
        assert clamped["error"]["class"] == "DatabaseError"


@pytest.fixture
def server(tiny_star):
    catalog, star = tiny_star
    with WarehouseServer(
        Warehouse(catalog, star), owns_warehouse=True
    ) as running:
        yield running


def raw_client(server: WarehouseServer) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def roundtrip(sock: socket.socket, payload: dict) -> dict | None:
    sock.sendall(protocol.encode_frame(payload))
    return protocol.read_frame(sock.makefile("rb"))


class TestServerViolations:
    """docs/PROTOCOL.md section 7: ERROR frame, then close."""

    def test_execute_before_hello_is_fatal(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame({"type": "execute", "sql": "SELECT 1"})
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "hello" in reply["error"]["message"]
            assert protocol.read_frame(reader) is None  # closed

    def test_version_mismatch_is_fatal(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame({"type": "hello", "version": 999})
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "version" in reply["error"]["message"]
            assert protocol.read_frame(reader) is None

    def test_unknown_frame_type_is_fatal(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame(
                    {"type": "hello", "version": protocol.PROTOCOL_VERSION}
                )
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(protocol.encode_frame({"type": "launch_missiles"}))
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "unknown frame type" in reply["error"]["message"]
            assert protocol.read_frame(reader) is None

    def test_garbage_bytes_close_the_connection(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            body = b"\xff\xfe not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            reply = protocol.read_frame(reader)  # best-effort error frame
            if reply is not None:
                assert reply["type"] == "error"
                assert protocol.read_frame(reader) is None

    def test_statement_errors_keep_the_connection_alive(self, server):
        """Statement-level failures are NOT protocol violations: the
        server reports them and keeps serving the same connection."""
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame(
                    {"type": "hello", "version": protocol.PROTOCOL_VERSION}
                )
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame({"type": "execute", "sql": "SELEC no"})
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert reply["error"]["class"] == "ProgrammingError"
            sock.sendall(
                protocol.encode_frame({"type": "fetch", "query_id": 42})
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert reply["error"]["class"] == "InterfaceError"
            # still usable: a valid statement completes end to end
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": (
                            "SELECT COUNT(*) FROM sales, store "
                            "WHERE f_store = s_id"
                        ),
                    }
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "execute_ok"
            (query_id,) = reply["query_ids"]
            sock.sendall(
                protocol.encode_frame(
                    {"type": "fetch", "query_id": query_id, "timeout": 30}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "rows"
            assert reply["rows"] == [[12]]
            assert reply["more"] is False

    def test_fetch_rejects_bad_page_sizes(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame(
                    {"type": "hello", "version": protocol.PROTOCOL_VERSION}
                )
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": "SELECT COUNT(*) FROM sales",
                    }
                )
            )
            (query_id,) = protocol.read_frame(reader)["query_ids"]
            sock.sendall(
                protocol.encode_frame(
                    {"type": "fetch", "query_id": query_id, "max_rows": 0}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "max_rows" in reply["error"]["message"]

    def test_row_paging_over_the_wire(self, server):
        """A grouped result spread over max_rows=1 pages arrives whole
        and in order, with more=False exactly on the last page."""
        with repro.connect(server.url) as conn:
            expected = conn.execute(
                "SELECT s_city, COUNT(*) FROM sales, store "
                "WHERE f_store = s_id GROUP BY s_city"
            ).fetchall()
        assert len(expected) == 3
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame(
                    {"type": "hello", "version": protocol.PROTOCOL_VERSION}
                )
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": (
                            "SELECT s_city, COUNT(*) FROM sales, store "
                            "WHERE f_store = s_id GROUP BY s_city"
                        ),
                    }
                )
            )
            (query_id,) = protocol.read_frame(reader)["query_ids"]
            pages = []
            more = True
            while more:
                sock.sendall(
                    protocol.encode_frame(
                        {
                            "type": "fetch",
                            "query_id": query_id,
                            "max_rows": 1,
                            "timeout": 30,
                        }
                    )
                )
                reply = protocol.read_frame(reader)
                assert reply["type"] == "rows"
                assert len(reply["rows"]) <= 1
                pages.append(reply["rows"])
                more = reply["more"]
            rows = [tuple(row) for page in pages for row in page]
            assert rows == expected
            assert all(len(page) == 1 for page in pages)
