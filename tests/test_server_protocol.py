"""The wire protocol (docs/PROTOCOL.md): framing, codecs, violations.

Unit tests for the transport layer in ``repro/server/protocol.py``
(round trips, truncation, oversize, malformed JSON) plus live-server
tests driving raw sockets through the normative violation handling of
docs/PROTOCOL.md section 7: a server must answer protocol violations
with an ERROR frame where the stream still permits one, and must close
the connection afterwards — without disturbing other connections.
"""

from __future__ import annotations

import io
import socket
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro
from repro.catalog.schema import DataType
from repro.engine import Warehouse
from repro.server import WarehouseServer, protocol
from repro.server.protocol import ProtocolError


class TestFraming:
    def test_round_trip(self):
        payload = {"type": "execute", "sql": "SELECT 1", "params": [1, "a"]}
        encoded = protocol.encode_frame(payload)
        assert protocol.read_frame(io.BytesIO(encoded)) == payload

    def test_many_frames_on_one_stream(self):
        frames = [{"type": "hello", "n": index} for index in range(5)]
        stream = io.BytesIO(
            b"".join(protocol.encode_frame(frame) for frame in frames)
        )
        assert [protocol.read_frame(stream) for _ in frames] == frames
        assert protocol.read_frame(stream) is None  # clean EOF

    def test_clean_eof_returns_none(self):
        assert protocol.read_frame(io.BytesIO(b"")) is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(io.BytesIO(b"\x00\x00"))

    def test_truncated_body_raises(self):
        encoded = protocol.encode_frame({"type": "hello"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            protocol.read_frame(io.BytesIO(encoded[:-2]))

    def test_oversized_length_prefix_raises(self):
        header = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="limit"):
            protocol.read_frame(io.BytesIO(header))

    def test_invalid_json_body_raises(self):
        body = b"not json at all"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON"):
            protocol.read_frame(stream)

    def test_non_object_body_raises(self):
        body = b"[1, 2, 3]"
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="object"):
            protocol.read_frame(stream)

    def test_object_without_type_raises(self):
        body = b'{"sql": "SELECT 1"}'
        stream = io.BytesIO(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="type"):
            protocol.read_frame(stream)

    def test_encode_rejects_untyped_payloads(self):
        with pytest.raises(ProtocolError, match="type"):
            protocol.encode_frame({"sql": "SELECT 1"})
        with pytest.raises(ProtocolError, match="type"):
            protocol.encode_frame(["hello"])


class TestCodecs:
    def test_description_round_trip(self):
        description = (
            ("s_city", DataType.STRING, None, None, None, None, False),
            ("orders", DataType.INT, None, None, None, None, False),
        )
        encoded = protocol.encode_description(description)
        assert encoded == [
            ["s_city", "STRING", None, None, None, None, False],
            ["orders", "INT", None, None, None, None, False],
        ]
        assert protocol.decode_description(encoded) == description
        assert protocol.encode_description(None) is None
        assert protocol.decode_description(None) is None

    def test_description_unknown_type_code_raises(self):
        with pytest.raises(ProtocolError, match="description"):
            protocol.decode_description(
                [["x", "NOPE", None, None, None, None, False]]
            )

    def test_rows_round_trip(self):
        assert protocol.decode_rows([[1, "a"], [2, None]]) == [
            (1, "a"),
            (2, None),
        ]
        with pytest.raises(ProtocolError, match="rows"):
            protocol.decode_rows("nope")

    def test_error_payload_clamps_unknown_classes(self):
        payload = protocol.error_payload("ProgrammingError", "bad sql")
        assert payload["error"] == {
            "class": "ProgrammingError",
            "message": "bad sql",
        }
        clamped = protocol.error_payload("SecretInternalError", "boom")
        assert clamped["error"]["class"] == "DatabaseError"


# ----------------------------------------------------------------------
# Property tests (ISSUE 6 satellite): framing round trips, request-id
# demultiplexing, and version negotiation under arbitrary inputs.
# ----------------------------------------------------------------------
_JSON_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)

_FRAMES = st.fixed_dictionaries(
    {"type": st.sampled_from(["execute", "fetch", "cancel", "rows", "error"])},
    optional={
        "request_id": st.integers(min_value=0, max_value=7),
        "payload": _JSON_VALUES,
    },
)


class TestFramingProperties:
    @given(
        payload=st.dictionaries(st.text(max_size=10), _JSON_VALUES, max_size=6)
    )
    def test_any_typed_object_round_trips(self, payload):
        """encode → read is the identity on every JSON object frame."""
        payload = {**payload, "type": "execute"}
        decoded = protocol.read_frame(
            io.BytesIO(protocol.encode_frame(payload))
        )
        assert decoded == payload

    @given(frames=st.lists(_FRAMES, max_size=10))
    def test_any_schedule_round_trips_in_order(self, frames):
        """A whole frame schedule survives one stream, in order."""
        stream = io.BytesIO(
            b"".join(protocol.encode_frame(frame) for frame in frames)
        )
        assert [protocol.read_frame(stream) for _ in frames] == frames
        assert protocol.read_frame(stream) is None

    @given(
        frames=st.lists(_FRAMES, max_size=12),
        cut=st.integers(min_value=1, max_value=4),
    )
    def test_truncation_never_passes_silently(self, frames, cut):
        """Chopping bytes off any schedule yields a clean EOF at a
        frame boundary for the full prefix, then ProtocolError or
        EOF — never a mangled frame."""
        encoded = b"".join(protocol.encode_frame(frame) for frame in frames)
        stream = io.BytesIO(encoded[:-cut] if cut <= len(encoded) else b"")
        survivors = []
        try:
            while True:
                frame = protocol.read_frame(stream)
                if frame is None:
                    break
                survivors.append(frame)
        except ProtocolError:
            pass
        assert survivors == frames[: len(survivors)]
        assert len(frames) - len(survivors) <= 1 or cut >= len(encoded)


class TestMultiplexingProperties:
    """docs/PROTOCOL.md section 8: the per-request subsequence IS the
    request's reply stream, whatever the interleaving."""

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.sampled_from(["execute_ok", "rows", "error"]),
            ),
            max_size=30,
        )
    )
    def test_split_streams_is_the_subsequence_per_request(self, schedule):
        frames = [
            {"type": kind, "request_id": request_id, "seq": position}
            for position, (request_id, kind) in enumerate(schedule)
        ]
        streams = protocol.split_streams(frames)
        # exactly the ids that appeared, nothing invented
        assert set(streams) == {rid for rid, _ in schedule}
        for request_id, stream in streams.items():
            assert stream == [
                frame
                for frame in frames
                if frame["request_id"] == request_id
            ]
            # arrival order preserved within the stream
            assert [frame["seq"] for frame in stream] == sorted(
                frame["seq"] for frame in stream
            )
        # demultiplexing is a partition: nothing lost, nothing duplicated
        assert sorted(
            frame["seq"] for stream in streams.values() for frame in stream
        ) == list(range(len(frames)))

    @given(frames=st.lists(_FRAMES, max_size=10))
    def test_split_streams_rejects_untagged_frames(self, frames):
        if all("request_id" in frame for frame in frames):
            protocol.split_streams(frames)  # all tagged: must not raise
        else:
            with pytest.raises(ProtocolError, match="request_id"):
                protocol.split_streams(frames)


class TestNegotiationProperties:
    @given(offer=st.integers(min_value=-1000, max_value=1000))
    def test_negotiation_picks_highest_common_version(self, offer):
        negotiated = protocol.negotiate_version(offer)
        common = [
            version
            for version in protocol.SUPPORTED_VERSIONS
            if version <= offer
        ]
        assert negotiated == (max(common) if common else None)

    @given(
        offer=st.one_of(
            st.none(),
            st.booleans(),
            st.floats(),
            st.text(max_size=5),
            st.lists(st.integers(), max_size=2),
        )
    )
    def test_non_integer_offers_never_negotiate(self, offer):
        assert protocol.negotiate_version(offer) is None

    @given(
        client_max=st.integers(min_value=1, max_value=10),
        server_versions=st.sets(
            st.integers(min_value=1, max_value=10), min_size=1, max_size=5
        ),
    )
    def test_negotiation_is_highest_common_for_any_server_set(
        self, client_max, server_versions
    ):
        """The rule generalizes beyond (1, 2): for any contiguous-or-
        not supported set, the outcome is the highest supported
        version the client also speaks."""
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(
                protocol,
                "SUPPORTED_VERSIONS",
                tuple(sorted(server_versions)),
            )
            negotiated = protocol.negotiate_version(client_max)
        speakable = {v for v in server_versions if v <= client_max}
        assert negotiated == (max(speakable) if speakable else None)


class TestRequestIdProperties:
    @given(request_id=st.integers(min_value=0, max_value=2**53))
    def test_valid_ids_pass_through(self, request_id):
        frame = {"type": "fetch", "request_id": request_id}
        assert protocol.request_id_of(frame) == request_id

    @given(
        request_id=st.one_of(
            st.none(),
            st.booleans(),
            st.integers(max_value=-1),
            st.floats(),
            st.text(max_size=5),
        )
    )
    def test_invalid_ids_raise(self, request_id):
        with pytest.raises(ProtocolError, match="request_id"):
            protocol.request_id_of(
                {"type": "fetch", "request_id": request_id}
            )


@pytest.fixture
def server(tiny_star):
    catalog, star = tiny_star
    with WarehouseServer(
        Warehouse(catalog, star), owns_warehouse=True
    ) as running:
        yield running


def raw_client(server: WarehouseServer) -> socket.socket:
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    return sock


def roundtrip(sock: socket.socket, payload: dict) -> dict | None:
    sock.sendall(protocol.encode_frame(payload))
    return protocol.read_frame(sock.makefile("rb"))


class TestServerViolations:
    """docs/PROTOCOL.md section 7: ERROR frame, then close."""

    def test_execute_before_hello_is_fatal(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame({"type": "execute", "sql": "SELECT 1"})
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "hello" in reply["error"]["message"]
            assert protocol.read_frame(reader) is None  # closed

    def test_version_mismatch_is_fatal(self, server):
        # an offer below the oldest supported version shares nothing
        # with the server; offers ABOVE negotiate down instead
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame({"type": "hello", "version": 0})
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "version" in reply["error"]["message"]
            assert protocol.read_frame(reader) is None

    def test_unknown_frame_type_is_fatal(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame(
                    {"type": "hello", "version": protocol.PROTOCOL_VERSION}
                )
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame(
                    {"type": "launch_missiles", "request_id": 7}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "unknown frame type" in reply["error"]["message"]
            assert reply["request_id"] == 7
            assert protocol.read_frame(reader) is None

    def test_missing_request_id_on_v2_is_fatal(self, server):
        """A v2 connection's post-HELLO frames MUST carry request ids
        (docs/PROTOCOL.md section 8); omitting one is a framing
        violation, not a statement error."""
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(protocol.encode_frame({"type": "hello", "version": 2}))
            assert protocol.read_frame(reader)["version"] == 2
            sock.sendall(
                protocol.encode_frame(
                    {"type": "execute", "sql": "SELECT COUNT(*) FROM sales"}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "request_id" in reply["error"]["message"]
            assert protocol.read_frame(reader) is None

    def test_v1_client_negotiates_down_and_runs_bare_frames(self, server):
        """A v1 peer keeps working against a v2 server: HELLO settles
        on version 1 and post-HELLO frames carry no request ids."""
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(protocol.encode_frame({"type": "hello", "version": 1}))
            reply = protocol.read_frame(reader)
            assert reply["type"] == "hello_ok"
            assert reply["version"] == 1
            sock.sendall(
                protocol.encode_frame(
                    {"type": "execute", "sql": "SELECT COUNT(*) FROM sales"}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "execute_ok"
            assert "request_id" not in reply
            (query_id,) = reply["query_ids"]
            sock.sendall(
                protocol.encode_frame(
                    {"type": "fetch", "query_id": query_id, "timeout": 30}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "rows"
            assert reply["rows"] == [[12]]
            assert "request_id" not in reply

    def test_garbage_bytes_close_the_connection(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            body = b"\xff\xfe not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            reply = protocol.read_frame(reader)  # best-effort error frame
            if reply is not None:
                assert reply["type"] == "error"
                assert protocol.read_frame(reader) is None

    def test_statement_errors_keep_the_connection_alive(self, server):
        """Statement-level failures are NOT protocol violations: the
        server reports them and keeps serving the same connection."""
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame(
                    {"type": "hello", "version": protocol.PROTOCOL_VERSION}
                )
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame(
                    {"type": "execute", "sql": "SELEC no", "request_id": 1}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert reply["error"]["class"] == "ProgrammingError"
            assert reply["request_id"] == 1
            sock.sendall(
                protocol.encode_frame(
                    {"type": "fetch", "query_id": 42, "request_id": 2}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert reply["error"]["class"] == "InterfaceError"
            assert reply["request_id"] == 2
            # still usable: a valid statement completes end to end
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": (
                            "SELECT COUNT(*) FROM sales, store "
                            "WHERE f_store = s_id"
                        ),
                        "request_id": 3,
                    }
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "execute_ok"
            assert reply["request_id"] == 3
            (query_id,) = reply["query_ids"]
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "fetch",
                        "query_id": query_id,
                        "timeout": 30,
                        "request_id": 4,
                    }
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "rows"
            assert reply["rows"] == [[12]]
            assert reply["more"] is False
            assert reply["request_id"] == 4

    def test_fetch_rejects_bad_page_sizes(self, server):
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame({"type": "hello", "version": 1})
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": "SELECT COUNT(*) FROM sales",
                    }
                )
            )
            (query_id,) = protocol.read_frame(reader)["query_ids"]
            sock.sendall(
                protocol.encode_frame(
                    {"type": "fetch", "query_id": query_id, "max_rows": 0}
                )
            )
            reply = protocol.read_frame(reader)
            assert reply["type"] == "error"
            assert "max_rows" in reply["error"]["message"]

    def test_row_paging_over_the_wire(self, server):
        """A grouped result spread over max_rows=1 pages arrives whole
        and in order, with more=False exactly on the last page."""
        with repro.connect(server.url) as conn:
            expected = conn.execute(
                "SELECT s_city, COUNT(*) FROM sales, store "
                "WHERE f_store = s_id GROUP BY s_city"
            ).fetchall()
        assert len(expected) == 3
        with raw_client(server) as sock:
            reader = sock.makefile("rb")
            sock.sendall(
                protocol.encode_frame({"type": "hello", "version": 1})
            )
            assert protocol.read_frame(reader)["type"] == "hello_ok"
            sock.sendall(
                protocol.encode_frame(
                    {
                        "type": "execute",
                        "sql": (
                            "SELECT s_city, COUNT(*) FROM sales, store "
                            "WHERE f_store = s_id GROUP BY s_city"
                        ),
                    }
                )
            )
            (query_id,) = protocol.read_frame(reader)["query_ids"]
            pages = []
            more = True
            while more:
                sock.sendall(
                    protocol.encode_frame(
                        {
                            "type": "fetch",
                            "query_id": query_id,
                            "max_rows": 1,
                            "timeout": 30,
                        }
                    )
                )
                reply = protocol.read_frame(reader)
                assert reply["type"] == "rows"
                assert len(reply["rows"]) <= 1
                pages.append(reply["rows"])
                more = reply["more"]
            rows = [tuple(row) for page in pages for row in page]
            assert rows == expected
            assert all(len(page) == 1 for page in pages)
