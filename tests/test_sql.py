"""Unit tests for the SQL lexer, parser, and binder."""

import pytest

from repro.errors import ParseError
from repro.query.predicate import And, Between, Comparison, InList, Not, Or
from repro.query.reference import evaluate_star_query
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_star_query


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select FROM Where")]
        assert kinds == ["keyword", "keyword", "keyword", "eof"]

    def test_identifiers_preserve_case(self):
        token = tokenize("MyColumn")[0]
        assert token.kind == "ident"
        assert token.value == "MyColumn"

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].literal == 42
        assert tokens[1].literal == pytest.approx(3.14)

    def test_strings_with_escaped_quotes(self):
        token = tokenize("'it''s'")[0]
        assert token.kind == "string"
        assert token.literal == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_operators_longest_match(self):
        values = [t.value for t in tokenize("a <= b <> c >= d")]
        assert "<=" in values and "<>" in values and ">=" in values

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a ; b")

    def test_qualified_name_tokens(self):
        kinds = [t.kind for t in tokenize("t.col")]
        assert kinds == ["ident", "punct", "ident", "eof"]


class TestParserStructure:
    def _parse(self, sql, tiny):
        _, star = tiny
        return parse_star_query(sql, star)

    def test_basic_group_by_query(self, tiny_star):
        query = self._parse(
            "SELECT s_city, SUM(f_total) AS total "
            "FROM sales, store WHERE f_store = s_id GROUP BY s_city",
            tiny_star,
        )
        assert query.fact_table == "sales"
        assert [str(ref) for ref in query.group_by] == ["store.s_city"]
        assert query.aggregates[0].label == "total"

    def test_join_direction_is_irrelevant(self, tiny_star):
        left = self._parse(
            "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id",
            tiny_star,
        )
        right = self._parse(
            "SELECT COUNT(*) FROM sales, store WHERE s_id = f_store",
            tiny_star,
        )
        assert left.referenced_dimensions() == right.referenced_dimensions()

    def test_between_and_in(self, tiny_star):
        query = self._parse(
            "SELECT COUNT(*) FROM sales, store, product "
            "WHERE f_store = s_id AND f_product = p_id "
            "AND s_size BETWEEN 50 AND 150 AND p_category IN ('food', 'toys')",
            tiny_star,
        )
        assert isinstance(query.predicate_on("store"), Between)
        assert isinstance(query.predicate_on("product"), InList)

    def test_nested_boolean_predicates(self, tiny_star):
        query = self._parse(
            "SELECT COUNT(*) FROM sales, store WHERE f_store = s_id AND "
            "(s_city = 'lyon' OR (s_size > 100 AND NOT s_city = 'nice'))",
            tiny_star,
        )
        predicate = query.predicate_on("store")
        assert isinstance(predicate, Or)
        assert isinstance(predicate.children[1], And)
        assert isinstance(predicate.children[1].children[1], Not)

    def test_multiple_predicates_on_one_table_are_anded(self, tiny_star):
        query = self._parse(
            "SELECT COUNT(*) FROM sales, store "
            "WHERE f_store = s_id AND s_size > 10 AND s_size < 300",
            tiny_star,
        )
        assert isinstance(query.predicate_on("store"), And)

    def test_fact_predicates_split_from_dimension_predicates(self, tiny_star):
        query = self._parse(
            "SELECT COUNT(*) FROM sales, store "
            "WHERE f_store = s_id AND f_qty >= 2 AND s_size > 10",
            tiny_star,
        )
        assert isinstance(query.fact_predicate, Comparison)
        assert query.fact_predicate.column == "f_qty"

    def test_aggregate_expression_inputs(self, tiny_star):
        query = self._parse(
            "SELECT SUM(f_total - f_qty) FROM sales",
            tiny_star,
        )
        (spec,) = query.aggregates
        assert (spec.column, spec.column2, spec.combine) == (
            "f_total", "f_qty", "-",
        )

    def test_order_by_is_accepted_and_ignored(self, tiny_star):
        query = self._parse(
            "SELECT s_city, COUNT(*) FROM sales, store "
            "WHERE f_store = s_id GROUP BY s_city ORDER BY s_city DESC",
            tiny_star,
        )
        assert query.group_by  # parsed fine

    def test_qualified_column_names(self, tiny_star):
        query = self._parse(
            "SELECT store.s_city, COUNT(*) FROM sales, store "
            "WHERE sales.f_store = store.s_id GROUP BY store.s_city",
            tiny_star,
        )
        assert str(query.group_by[0]) == "store.s_city"


class TestParserErrors:
    def _expect_error(self, sql, tiny):
        _, star = tiny
        with pytest.raises(ParseError):
            parse_star_query(sql, star)

    def test_missing_from(self, tiny_star):
        self._expect_error("SELECT 1", tiny_star)

    def test_unknown_table(self, tiny_star):
        self._expect_error("SELECT COUNT(*) FROM nowhere", tiny_star)

    def test_fact_table_required(self, tiny_star):
        self._expect_error("SELECT COUNT(*) FROM store", tiny_star)

    def test_dimension_without_join(self, tiny_star):
        self._expect_error(
            "SELECT COUNT(*) FROM sales, store WHERE s_size > 10",
            tiny_star,
        )

    def test_join_must_follow_foreign_key(self, tiny_star):
        self._expect_error(
            "SELECT COUNT(*) FROM sales, store WHERE f_qty = s_id",
            tiny_star,
        )

    def test_non_equi_column_join_rejected(self, tiny_star):
        self._expect_error(
            "SELECT COUNT(*) FROM sales, store WHERE f_store < s_id",
            tiny_star,
        )

    def test_cross_table_or_rejected(self, tiny_star):
        self._expect_error(
            "SELECT COUNT(*) FROM sales, store, product "
            "WHERE f_store = s_id AND f_product = p_id "
            "AND (s_size > 10 OR p_price > 5)",
            tiny_star,
        )

    def test_join_inside_or_rejected(self, tiny_star):
        self._expect_error(
            "SELECT COUNT(*) FROM sales, store "
            "WHERE f_qty > 1 OR f_store = s_id",
            tiny_star,
        )

    def test_unknown_column(self, tiny_star):
        self._expect_error(
            "SELECT wat FROM sales",
            tiny_star,
        )

    def test_trailing_garbage(self, tiny_star):
        self._expect_error(
            "SELECT COUNT(*) FROM sales EXTRA",
            tiny_star,
        )


class TestParsedQueriesEvaluate:
    def test_sql_equals_reference(self, tiny_star):
        catalog, star = tiny_star
        sql = (
            "SELECT s_city, SUM(f_total) FROM sales, store, product "
            "WHERE f_store = s_id AND f_product = p_id "
            "AND p_category = 'food' GROUP BY s_city"
        )
        query = parse_star_query(sql, star)
        rows = evaluate_star_query(query, catalog)
        assert rows == [("lyon", 31), ("nice", 36), ("paris", 49)]

    def test_ssb_q41_parses_on_ssb_schema(self, ssb_small):
        _, star = ssb_small
        sql = (
            "SELECT d_year, c_nation, SUM(lo_revenue - lo_supplycost) AS profit "
            "FROM lineorder, customer, supplier, part, date "
            "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey "
            "AND lo_partkey = p_partkey AND lo_orderdate = d_datekey "
            "AND c_region = 'AMERICA' AND s_region = 'AMERICA' "
            "AND p_mfgr IN ('MFGR#1', 'MFGR#2') "
            "GROUP BY d_year, c_nation ORDER BY d_year, c_nation"
        )
        query = parse_star_query(sql, star)
        assert set(query.referenced_dimensions()) == {
            "customer", "supplier", "part", "date",
        }
