"""Failure-injection and misuse tests.

The operator must stay consistent when admissions fail partway, when
callers misuse the API, and when components raise mid-flight.
"""

import pytest

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.errors import AdmissionError, QueryError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison, Predicate
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery


def city_query(city):
    return StarQuery.build(
        "sales",
        dimension_predicates={"store": Comparison("s_city", "=", city)},
        aggregates=[AggregateSpec("count")],
    )


class _ExplodingPredicate(Predicate):
    """A predicate whose binding succeeds but evaluation raises."""

    def bind(self, schema):
        def matcher(row):
            raise RuntimeError("injected predicate failure")

        return matcher

    def referenced_columns(self):
        return set()

    def __eq__(self, other):
        return isinstance(other, _ExplodingPredicate)

    def __hash__(self):
        return hash("exploding")


class TestFailedAdmission:
    def test_dimension_query_failure_releases_everything(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star, max_concurrent=1)
        bad = StarQuery.build(
            "sales",
            dimension_predicates={"store": _ExplodingPredicate()},
            aggregates=[AggregateSpec("count")],
        )
        with pytest.raises(RuntimeError):
            operator.submit(bad)
        # the slot, the preprocessor, and the pipeline are all clean
        assert operator.manager.allocator.active_count == 0
        assert operator.preprocessor.active_count == 0
        assert not operator.preprocessor.is_stalled
        # the operator still works
        good = city_query("lyon")
        assert operator.execute(good) == evaluate_star_query(good, catalog)

    def test_validation_failure_before_any_state_change(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        invalid = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("nope", "=", 1)},
        )
        with pytest.raises(QueryError):
            operator.submit(invalid)
        assert operator.filter_order() == ()
        assert operator.stats.queries_admitted == 0

    def test_failed_admission_leaves_other_queries_running(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=4)
        )
        healthy = operator.submit(city_query("paris"))
        operator.executor.step()
        bad = StarQuery.build(
            "sales",
            dimension_predicates={"product": _ExplodingPredicate()},
            aggregates=[AggregateSpec("count")],
        )
        with pytest.raises(RuntimeError):
            operator.submit(bad)
        operator.run_until_drained()
        assert healthy.results() == evaluate_star_query(
            city_query("paris"), catalog
        )


class TestMisuse:
    def test_results_before_run(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        handle = operator.submit(city_query("lyon"))
        with pytest.raises(AdmissionError):
            handle.results()

    def test_submitting_same_query_object_twice_is_fine(self, tiny_star):
        """Queries are values: resubmission makes an independent run."""
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        query = city_query("lyon")
        first = operator.submit(query)
        second = operator.submit(query)
        operator.run_until_drained()
        assert first.results() == second.results()
        assert first is not second

    def test_galaxy_rejects_mismatched_join_columns(self):
        from repro.cjoin.galaxy import GalaxyJoinQuery

        listing = StarQuery.build(
            "sales", select=[ColumnRef("sales", "f_qty")]
        )
        with pytest.raises(QueryError):
            GalaxyJoinQuery(
                left=listing,
                right=listing,
                left_join_column=0,
                right_join_column=3,
            )

    def test_warehouse_rejects_unknown_sql_table(self, tiny_star):
        from repro.engine import Warehouse
        from repro.errors import ParseError

        catalog, star = tiny_star
        warehouse = Warehouse(catalog, star)
        with pytest.raises(ParseError):
            warehouse.submit_sql("SELECT COUNT(*) FROM nonexistent")


class TestPredicateEdgeCases:
    def test_query_selecting_zero_dimension_rows(self, tiny_star):
        """The 'empty hash table with an active query' regression:

        the filter must keep dropping tuples for this query for its
        whole lifetime, even while other queries come and go.
        """
        catalog, star = tiny_star
        operator = CJoinOperator(
            catalog, star, executor_config=ExecutorConfig(batch_size=4)
        )
        empty = operator.submit(city_query("nowhere"))
        operator.executor.step()
        other = operator.submit(city_query("lyon"))
        operator.run_until_drained()
        operator.manager.process_finished()
        # admit and finish yet another query while `empty`... is done;
        # now rerun the scenario with interleaved finish order
        assert empty.results() == []
        assert other.results() == evaluate_star_query(
            city_query("lyon"), catalog
        )

    def test_all_queries_select_everything(self, tiny_star):
        catalog, star = tiny_star
        operator = CJoinOperator(catalog, star)
        query = StarQuery.build(
            "sales",
            dimension_predicates={"store": Comparison("s_size", ">", -1)},
            group_by=[ColumnRef("store", "s_city")],
            aggregates=[AggregateSpec("count")],
        )
        handles = [operator.submit(query) for _ in range(5)]
        operator.run_until_drained()
        expected = evaluate_star_query(query, catalog)
        for handle in handles:
            assert handle.results() == expected

    def test_null_foreign_keys_never_join(self):
        """SQL semantics: a NULL FK matches no dimension row."""
        from repro.catalog.catalog import Catalog
        from repro.catalog.schema import (
            Column,
            DataType,
            ForeignKey,
            StarSchema,
            TableSchema,
        )
        from repro.storage.table import Table

        dim = TableSchema(
            "d",
            [Column("id", DataType.INT)],
            primary_key="id",
        )
        fact = TableSchema(
            "f",
            [Column("d_id", DataType.INT), Column("v", DataType.INT)],
            foreign_keys=[ForeignKey("d_id", "d", "id")],
        )
        star = StarSchema(fact=fact, dimensions={"d": dim})
        catalog = Catalog()
        catalog.register_table(Table.from_rows(dim, [(1,)]))
        catalog.register_table(
            Table.from_rows(fact, [(1, 10), (None, 20), (1, 30)])
        )
        catalog.register_star(star)
        query = StarQuery.build(
            "f",
            dimension_predicates={"d": Comparison("id", "=", 1)},
            aggregates=[AggregateSpec("sum", "f", "v")],
        )
        operator = CJoinOperator(catalog, star)
        assert operator.execute(query) == [(40,)]
        assert operator.execute(query) == evaluate_star_query(query, catalog)