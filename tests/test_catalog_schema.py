"""Unit tests for schema objects and star/galaxy topology checks."""

import pytest

from repro.catalog.schema import (
    Column,
    DataType,
    ForeignKey,
    GalaxySchema,
    StarSchema,
    TableSchema,
)
from repro.errors import SchemaError


def _dim(name="d", key="id"):
    return TableSchema(
        name,
        [Column(key, DataType.INT), Column("label", DataType.STRING)],
        primary_key=key,
    )


def _fact(name="f", fk_table="d", fk_col="d_id"):
    return TableSchema(
        name,
        [Column(fk_col, DataType.INT), Column("value", DataType.FLOAT)],
        foreign_keys=[ForeignKey(fk_col, fk_table, "id")],
    )


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("bad name", DataType.INT)

    @pytest.mark.parametrize(
        "dtype,expected",
        [
            (DataType.INT, int),
            (DataType.FLOAT, float),
            (DataType.STRING, str),
            (DataType.DATE, int),
        ],
    )
    def test_python_types(self, dtype, expected):
        assert dtype.python_type() is expected


class TestTableSchema:
    def test_column_index_follows_declaration_order(self):
        table = _dim()
        assert table.column_index("id") == 0
        assert table.column_index("label") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            _dim().column_index("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.INT), Column("a", DataType.INT)],
            )

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", DataType.INT)], primary_key="b")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                [Column("a", DataType.INT)],
                foreign_keys=[ForeignKey("zz", "d", "id")],
            )

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_validate_row_checks_arity(self):
        with pytest.raises(SchemaError):
            _dim().validate_row((1,))

    def test_validate_row_checks_types(self):
        with pytest.raises(SchemaError):
            _dim().validate_row(("not an int", "label"))

    def test_validate_row_allows_null(self):
        _dim().validate_row((None, None))

    def test_validate_row_accepts_int_for_float(self):
        _fact().validate_row((1, 7))

    def test_foreign_key_to_unknown_dimension(self):
        with pytest.raises(SchemaError):
            _fact().foreign_key_to("elsewhere")

    def test_foreign_key_to_ambiguous(self):
        table = TableSchema(
            "f",
            [Column("a", DataType.INT), Column("b", DataType.INT)],
            foreign_keys=[
                ForeignKey("a", "d", "id"),
                ForeignKey("b", "d", "id"),
            ],
        )
        with pytest.raises(SchemaError):
            table.foreign_key_to("d")


class TestStarSchema:
    def test_valid_star(self):
        star = StarSchema(fact=_fact(), dimensions={"d": _dim()})
        assert star.dimension_names() == ["d"]
        assert star.fact_fk_index("d") == 0

    def test_dimension_requires_primary_key(self):
        keyless = TableSchema("d", [Column("id", DataType.INT)])
        with pytest.raises(SchemaError):
            StarSchema(fact=_fact(), dimensions={"d": keyless})

    def test_foreign_key_must_hit_primary_key(self):
        fact = TableSchema(
            "f",
            [Column("d_id", DataType.INT)],
            foreign_keys=[ForeignKey("d_id", "d", "label")],
        )
        with pytest.raises(SchemaError):
            StarSchema(fact=fact, dimensions={"d": _dim()})

    def test_dimension_name_mismatch(self):
        with pytest.raises(SchemaError):
            StarSchema(fact=_fact(), dimensions={"wrong": _dim()})

    def test_unknown_dimension_lookup(self):
        star = StarSchema(fact=_fact(), dimensions={"d": _dim()})
        with pytest.raises(SchemaError):
            star.dimension("nope")

    def test_owner_of_column_resolves(self):
        star = StarSchema(fact=_fact(), dimensions={"d": _dim()})
        assert star.owner_of_column("label").name == "d"
        assert star.owner_of_column("value").name == "f"

    def test_owner_of_column_ambiguous(self):
        dim_b = TableSchema(
            "b",
            [Column("bid", DataType.INT), Column("label", DataType.STRING)],
            primary_key="bid",
        )
        fact = TableSchema(
            "f",
            [
                Column("d_id", DataType.INT),
                Column("b_id", DataType.INT),
            ],
            foreign_keys=[
                ForeignKey("d_id", "d", "id"),
                ForeignKey("b_id", "b", "bid"),
            ],
        )
        star = StarSchema(fact=fact, dimensions={"d": _dim(), "b": dim_b})
        with pytest.raises(SchemaError):
            star.owner_of_column("label")

    def test_table_lookup_covers_fact_and_dims(self):
        star = StarSchema(fact=_fact(), dimensions={"d": _dim()})
        assert star.table("f") is star.fact
        assert star.table("d") is star.dimension("d")


class TestGalaxySchema:
    def test_fact_links_must_reference_registered_stars(self):
        star = StarSchema(fact=_fact(), dimensions={"d": _dim()})
        with pytest.raises(SchemaError):
            GalaxySchema(
                stars={"f": star},
                fact_links=[ForeignKey("value", "unknown_fact", "x")],
            )

    def test_star_lookup(self):
        star = StarSchema(fact=_fact(), dimensions={"d": _dim()})
        galaxy = GalaxySchema(stars={"f": star})
        assert galaxy.star("f") is star
        with pytest.raises(SchemaError):
            galaxy.star("g")
