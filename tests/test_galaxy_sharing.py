"""Galaxy sub-queries share the operator with ordinary star queries.

Paper section 5: "each CJOIN operator will be evaluating concurrently
several star queries that participate in concurrent fact-to-fact join
queries" — the star sub-plans are just more queries on the shared
pipeline.
"""

from repro.cjoin import CJoinOperator
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from tests.test_cjoin_galaxy_snapshots import galaxy_setup


def test_galaxy_subquery_shares_scan_with_star_queries():
    catalog_a, star_a, catalog_b, star_b = galaxy_setup()
    operator = CJoinOperator(catalog_a, star_a)

    # an ordinary aggregation query on the orders star...
    star_query = StarQuery.build(
        "orders",
        group_by=[ColumnRef("region", "r_name")],
        aggregates=[AggregateSpec("sum", "orders", "o_amount")],
    )
    # ...and a galaxy sub-plan (listing) registered on the same operator
    sub_plan = StarQuery.build(
        "orders",
        dimension_predicates={"region": Comparison("r_name", "=", "east")},
        select=[ColumnRef("orders", "o_id"), ColumnRef("orders", "o_amount")],
    )
    star_handle = operator.submit(star_query)
    sub_handle = operator.submit(sub_plan)
    operator.run_until_drained()

    assert star_handle.results() == evaluate_star_query(star_query, catalog_a)
    assert sub_handle.results() == evaluate_star_query(sub_plan, catalog_a)
    # both were served by one wrap of the shared scan
    fact_rows = catalog_a.table("orders").row_count
    assert operator.stats.tuples_scanned <= fact_rows + 1

    # the sub-plan's listing feeds the fact-to-fact join downstream
    shipments = evaluate_star_query(
        StarQuery.build(
            "shipments",
            select=[
                ColumnRef("shipments", "sh_order"),
                ColumnRef("shipments", "sh_cost"),
            ],
        ),
        catalog_b,
    )
    order_ids = {row[0] for row in sub_handle.results()}
    joined_costs = sum(
        cost for order_id, cost in shipments if order_id in order_ids
    )
    assert joined_costs == 12  # east order 100: shipments 5 + 7
