"""Open-loop latency against the always-on warehouse service.

The acceptance gate for the service layer (DESIGN.md section 9,
EXPERIMENTS.md section 6): queries arrive at Poisson times while the
continuous scan runs in the background, every submission is admitted
mid-scan, and the paper's *predictability* claim holds — per-query
latency stays nearly flat as the arrival rate grows, because all
in-flight queries share the one scan.

Two arrival regimes over the same seeded query mix:

* **low** — mean inter-arrival well above the scan-cycle time, so the
  service is mostly single-query;
* **high** — 8x the low arrival rate, so a backlog forms and many
  queries ride the scan together.

``open_loop_flatness = p95(low) / p95(high)`` is the headline ratio:
1.0 is perfectly flat, a query-at-a-time engine degrades toward 1/8.
The pytest gate requires >= 0.2 (latency grows < 5x under 8x load)
and byte-identical results against the reference evaluator.
``measure_open_loop`` also feeds the ``open_loop_flatness`` ratio
tracked by scripts/check_bench_regression.py; ``--smoke`` runs a
seconds-scale arrival stream (start -> mid-scan admission -> clean
stop) for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_open_loop_latency.py --smoke
"""

from __future__ import annotations

import random
import sys
import time

from repro.engine import Warehouse
from repro.tuning import TuningConfig
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery

ARRIVAL_SEED = 17
SCALE_FACTOR = 0.005
QUERIES_PER_RUN = 32
#: mean arrivals per second in the low regime; the high regime is 8x
LOW_RATE_HZ = 4.0
RATE_RATIO = 8.0
MAX_IN_FLIGHT = 32
RESULT_TIMEOUT = 120.0
REQUIRED_FLATNESS = 0.2

#: (first year, last year) windows cycled across the arrival stream;
#: varied widths keep filter predicates (and admission work) diverse.
YEAR_WINDOWS = [
    (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
    (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
]


def open_loop_queries(count: int = QUERIES_PER_RUN) -> list[StarQuery]:
    """A deterministic mix of grouped star queries over the date dim."""
    queries = []
    for index in range(count):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("count"),
                ],
                label=f"open-loop-{index}",
            )
        )
    return queries


def run_open_loop(
    queries: list[StarQuery],
    arrival_rate_hz: float,
    scale_factor: float = SCALE_FACTOR,
    seed: int = ARRIVAL_SEED,
) -> dict:
    """One open-loop run: Poisson arrivals against a live service.

    Builds a fresh warehouse (fresh telemetry), starts the background
    driver, submits every query at seeded exponential inter-arrival
    gaps, blocks on all results, and stops the service cleanly.
    Returns the latency summary plus the collected result rows and the
    count of mid-scan admissions.
    """
    warehouse = Warehouse.from_ssb(
        scale_factor=scale_factor,
        seed=31,
        execution="batched",
        tuning=TuningConfig(max_in_flight=MAX_IN_FLIGHT),
    )
    rng = random.Random(seed)
    service = warehouse.start_service()
    try:
        handles = []
        for query in queries:
            time.sleep(rng.expovariate(arrival_rate_hz))
            handles.append(warehouse.submit(query))
        results = [handle.results(timeout=RESULT_TIMEOUT) for handle in handles]
    finally:
        warehouse.stop_service()
    summary = service.latency_summary()
    mid_scan = sum(
        1 for record in service.latency_records
        if record.admitted_with_in_flight > 0
    )
    return {
        "arrival_rate_hz": arrival_rate_hz,
        "results": results,
        "summary": summary,
        "mid_scan_admissions": mid_scan,
        "queries": len(handles),
    }


def measure_open_loop(
    scale_factor: float = SCALE_FACTOR,
    count: int = QUERIES_PER_RUN,
    low_rate_hz: float = LOW_RATE_HZ,
    rate_ratio: float = RATE_RATIO,
) -> dict:
    """Low-vs-high arrival-rate comparison; the flatness headline.

    Returns ``low``/``high`` run dicts, the ``flatness`` ratio
    (p95 low / p95 high), and ``identical`` — whether both runs match
    the reference evaluator on every query.
    """
    queries = open_loop_queries(count)
    low = run_open_loop(queries, low_rate_hz, scale_factor)
    high = run_open_loop(queries, low_rate_hz * rate_ratio, scale_factor)
    reference_warehouse = Warehouse.from_ssb(scale_factor=scale_factor, seed=31)
    expected = [
        evaluate_star_query(query, reference_warehouse.catalog)
        for query in queries
    ]
    identical = low["results"] == expected and high["results"] == expected
    p95_low = low["summary"]["p95"]
    p95_high = high["summary"]["p95"]
    return {
        "low": low,
        "high": high,
        "flatness": p95_low / p95_high if p95_high > 0 else 0.0,
        "identical": identical,
    }


def _format_run(tag: str, run: dict) -> str:
    summary = run["summary"]
    return (
        f"{tag}: rate {run['arrival_rate_hz']:.1f}/s, "
        f"{run['queries']} queries, "
        f"p50 {summary['p50'] * 1e3:.1f} ms, "
        f"p95 {summary['p95'] * 1e3:.1f} ms, "
        f"p99 {summary['p99'] * 1e3:.1f} ms, "
        f"wait p95 {summary['wait_p95'] * 1e3:.1f} ms, "
        f"{run['mid_scan_admissions']}/{run['queries']} mid-scan"
    )


def test_open_loop_latency_flat():
    """8x the arrival rate must cost < 5x the p95 latency."""
    measured = measure_open_loop()
    print()
    print(_format_run("low", measured["low"]))
    print(_format_run("high", measured["high"]))
    print(f"flatness p95(low)/p95(high): {measured['flatness']:.2f}")
    assert measured["identical"], "service results diverged from reference"
    assert measured["flatness"] >= REQUIRED_FLATNESS, (
        f"latency not flat: p95 grew "
        f"{1.0 / max(measured['flatness'], 1e-9):.1f}x under "
        f"{RATE_RATIO:.0f}x load"
    )


def _smoke() -> int:
    """Seconds-scale CI pass: arrivals, mid-scan admission, clean stop."""
    queries = open_loop_queries(8)
    run = run_open_loop(
        queries, arrival_rate_hz=64.0, scale_factor=0.001
    )
    reference = Warehouse.from_ssb(scale_factor=0.001, seed=31)
    expected = [
        evaluate_star_query(query, reference.catalog) for query in queries
    ]
    print(_format_run("smoke", run))
    if run["results"] != expected:
        print("FAIL: smoke results diverged from the reference evaluator")
        return 1
    if run["summary"]["count"] < len(queries):
        print("FAIL: smoke run lost latency records")
        return 1
    print("open-loop service smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--smoke"]:
        return _smoke()
    if argv:
        print(f"unknown arguments {argv}; expected --smoke or nothing")
        return 2
    measured = measure_open_loop()
    print(_format_run("low", measured["low"]))
    print(_format_run("high", measured["high"]))
    print(f"flatness p95(low)/p95(high): {measured['flatness']:.2f}")
    print(f"identical to reference: {measured['identical']}")
    return 0 if measured["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
