"""Cancellation under a live service (EXPERIMENTS.md section 7).

Measures what the client layer promises (DESIGN.md section 10):
cancelling one of N in-flight queries frees its slot within one scan
cycle and perturbs nothing else.  A live service admits N concurrent
queries mid-scan, a configurable fraction of them is cancelled partway
through the cycle, and the benchmark records *slot-free latency* —
wall-clock from ``cancel()`` returning to the service's in-flight
count dropping (the freed slot being observable, and therefore
reusable by the admission-queue pump).

Gates: every surviving query's results equal the reference
evaluator's, every cancelled handle raises ``CancelledError``, and the
follow-up queries submitted after the cancellations admit into the
freed slots without growing ``max_in_flight``.

Knobs::

    PYTHONPATH=src python benchmarks/bench_cancellation.py \
        [--queries N] [--cancel-fraction F] [--smoke]
"""

from __future__ import annotations

import argparse
import time

from repro.engine import Warehouse
from repro.errors import CancelledError
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery

SCALE_FACTOR = 0.005
DEFAULT_QUERIES = 16
DEFAULT_CANCEL_FRACTION = 0.25
RESULT_TIMEOUT = 120.0
SLOT_FREE_TIMEOUT = 30.0

YEAR_WINDOWS = [
    (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
    (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
]


def workload(count: int) -> list[StarQuery]:
    """Deterministic grouped star queries (the open-loop mix)."""
    queries = []
    for index in range(count):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("count"),
                ],
                label=f"cancel-bench-{index}",
            )
        )
    return queries


def _percentile(values: list[float], fraction: float) -> float:
    from repro.cjoin.stats import percentile

    return percentile(values, fraction)


def measure_cancellation(
    count: int = DEFAULT_QUERIES,
    cancel_fraction: float = DEFAULT_CANCEL_FRACTION,
    scale_factor: float = SCALE_FACTOR,
) -> dict:
    """One measured pass; returns latencies, gates, and counts."""
    if not 0.0 < cancel_fraction < 1.0:
        raise ValueError(
            f"cancel_fraction must be in (0, 1), got {cancel_fraction}"
        )
    queries = workload(count)
    cancel_count = max(1, int(count * cancel_fraction))
    victims = set(range(0, count, max(1, count // cancel_count)))
    victims = set(sorted(victims)[:cancel_count])

    warehouse = Warehouse.from_ssb(
        scale_factor=scale_factor,
        seed=31,
        execution="batched",
        max_in_flight=count,
    )
    service = warehouse.start_service()
    slot_free_seconds: list[float] = []
    cancelled_ok = 0
    try:
        handles = [warehouse.submit(query) for query in queries]
        for index in sorted(victims):
            in_flight_before = service.in_flight
            started = time.perf_counter()
            if not handles[index].cancel():
                continue  # completed first; nothing to measure
            deadline = started + SLOT_FREE_TIMEOUT
            while (
                service.in_flight >= in_flight_before
                and time.perf_counter() < deadline
            ):
                time.sleep(0.0005)
            slot_free_seconds.append(time.perf_counter() - started)
            cancelled_ok += 1
        # the freed slots must be reusable: a follow-up wave admits
        # and completes without growing max_in_flight
        followups = [
            warehouse.submit(query) for query in workload(cancelled_ok)
        ]
        survivor_results = [
            handle.results(timeout=RESULT_TIMEOUT)
            for index, handle in enumerate(handles)
            if not handle.cancelled
        ]
        followup_results = [
            handle.results(timeout=RESULT_TIMEOUT) for handle in followups
        ]
        raised = 0
        for index, handle in enumerate(handles):
            if not handle.cancelled:
                continue
            try:
                handle.results()
            except CancelledError:
                raised += 1
    finally:
        warehouse.stop_service()

    expected = {
        label: evaluate_star_query(query, warehouse.catalog)
        for label, query in zip(
            (query.label for query in queries), queries
        )
    }
    survivors = [
        query.label
        for handle, query in zip(handles, queries)
        if not handle.cancelled
    ]
    survivors_ok = survivor_results == [
        expected[label] for label in survivors
    ]
    followups_ok = followup_results == [
        expected[query.label] for query in workload(cancelled_ok)
    ]
    return {
        "queries": count,
        "cancelled": cancelled_ok,
        #: at least one victim must actually have been torn down
        #: mid-scan; otherwise the run proved nothing about cancel()
        "cancel_exercised": cancelled_ok >= 1,
        "cancelled_raise": raised == cancelled_ok,
        "survivors_ok": survivors_ok,
        "followups_ok": followups_ok,
        "slot_free_p50": _percentile(slot_free_seconds, 0.50),
        "slot_free_p95": _percentile(slot_free_seconds, 0.95),
        "summary": service.latency_summary(),
    }


def _report(measured: dict) -> str:
    summary = measured["summary"]
    return (
        f"cancel bench: {measured['cancelled']}/{measured['queries']} "
        f"cancelled, slot-free p50 "
        f"{measured['slot_free_p50'] * 1e3:.1f} ms, p95 "
        f"{measured['slot_free_p95'] * 1e3:.1f} ms; survivor p95 "
        f"{summary['p95'] * 1e3:.1f} ms; survivors ok: "
        f"{measured['survivors_ok']}, follow-ups ok: "
        f"{measured['followups_ok']}, cancelled raise: "
        f"{measured['cancelled_raise']}"
    )


def test_cancellation_frees_slots_cleanly():
    """Survivors reference-equal, cancels raise, slots reused."""
    measured = measure_cancellation(count=8, scale_factor=0.002)
    print()
    print(_report(measured))
    assert measured["cancel_exercised"], (
        "no victim was cancelled mid-scan; the run was vacuous"
    )
    assert measured["survivors_ok"], "survivor results diverged"
    assert measured["followups_ok"], "freed slots were not reusable"
    assert measured["cancelled_raise"], "cancelled handle returned rows"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=DEFAULT_QUERIES)
    parser.add_argument(
        "--cancel-fraction", type=float, default=DEFAULT_CANCEL_FRACTION
    )
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)
    if args.smoke:
        # 0.002 keeps each scan cycle long enough that victims are
        # still mid-scan when cancel() lands, so the pass cannot be
        # vacuous on a fast machine
        measured = measure_cancellation(count=6, scale_factor=0.002)
    else:
        measured = measure_cancellation(
            count=args.queries, cancel_fraction=args.cancel_fraction
        )
    print(_report(measured))
    ok = (
        measured["cancel_exercised"]
        and measured["survivors_ok"]
        and measured["followups_ok"]
        and measured["cancelled_raise"]
    )
    print("cancellation bench ok" if ok else "cancellation bench FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
