"""Query latency flatness while streaming ingest races the scan.

The acceptance gate for the streaming-ingest subsystem (DESIGN.md
section 15, EXPERIMENTS.md section 12): an open-loop query stream runs
against the always-on service while a producer appends >= 2k fact
rows per second through the bounded ingest buffer, applied at scan
boundaries under snapshot isolation.  The paper's predictability claim
must survive the writes — per-query latency stays nearly flat because
applies land between cycles and never tear an in-flight query's view.

Two runs over the same seeded query mix:

* **quiet** — the query stream alone, no ingest;
* **racing** — the same stream with the producer appending
  ``INGEST_RATE_ROWS`` rows per second in bounded batches.

``ingest_flatness = p95(quiet) / p95(racing)`` is the headline ratio:
1.0 means writes are free, and the pytest gate requires >= 0.5 (p95
within 2x of the no-ingest run).  The gate also requires *freshness*:
after an INGEST ack, a probe query admitted immediately observes the
acked rows within two scan cycles — the ack-means-applied contract.
``measure_ingest_flatness`` feeds the ``ingest_flatness`` ratio
tracked by scripts/check_bench_regression.py; ``--smoke`` runs a
seconds-scale race (stream -> acked batch -> visible probe -> clean
stop) for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_ingest_flatness.py --smoke
"""

from __future__ import annotations

import random
import sys
import threading
import time

from repro.engine import Warehouse
from repro.errors import IngestBackpressureError
from repro.tuning import TuningConfig
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery

ARRIVAL_SEED = 23
SCALE_FACTOR = 0.005
QUERIES_PER_RUN = 24
ARRIVAL_RATE_HZ = 6.0
MAX_IN_FLIGHT = 32
RESULT_TIMEOUT = 120.0
#: appended fact rows per second in the racing run (the ISSUE floor is
#: 2k/s; the producer paces batches to hold this rate)
INGEST_RATE_ROWS = 2500
INGEST_BATCH_ROWS = 250
REQUIRED_FLATNESS = 0.5
#: scan cycles an acked batch may take to become visible to a probe
#: admitted right after the ack (the freshness half of the gate)
REQUIRED_VISIBILITY_CYCLES = 2.0

#: (first year, last year) windows cycled across the arrival stream.
YEAR_WINDOWS = [
    (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
    (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
]


def ingest_queries(count: int = QUERIES_PER_RUN) -> list[StarQuery]:
    """A deterministic mix of grouped star queries over the date dim."""
    queries = []
    for index in range(count):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("count"),
                ],
                label=f"ingest-race-{index}",
            )
        )
    return queries


def probe_query() -> StarQuery:
    """A full-window count: sees every committed fact row."""
    return StarQuery.build(
        "lineorder",
        dimension_predicates={"date": Between("d_year", 1992, 1998)},
        aggregates=[AggregateSpec("count")],
        label="ingest-probe",
    )


def _build_warehouse(scale_factor: float) -> Warehouse:
    """The racing substrate: MVCC on, vectorized execution."""
    return Warehouse.from_ssb(
        scale_factor=scale_factor,
        seed=31,
        execution="batched",
        enable_updates=True,
        tuning=TuningConfig(max_in_flight=MAX_IN_FLIGHT),
    )


class _Producer(threading.Thread):
    """Appends cloned fact rows at a paced rate until stopped.

    Rows are copies of existing lineorder rows, so every foreign key
    joins; back-pressure (a full buffer) backs off one batch interval
    and retries — exactly what a real producer does.
    """

    def __init__(self, warehouse: Warehouse, rows_per_second: float) -> None:
        super().__init__(name="ingest-producer", daemon=True)
        self.warehouse = warehouse
        self.interval = INGEST_BATCH_ROWS / rows_per_second
        self.template = warehouse.catalog.table(
            warehouse.star.fact.name
        ).all_rows()[:INGEST_BATCH_ROWS]
        self.tickets: list = []
        self.rows_offered = 0
        self.backpressure_events = 0
        self._halt = threading.Event()

    def run(self) -> None:
        next_send = time.monotonic()
        while not self._halt.is_set():
            batch = [
                self.template[index % len(self.template)]
                for index in range(INGEST_BATCH_ROWS)
            ]
            try:
                self.tickets.append(self.warehouse.ingest(fact_rows=batch))
                self.rows_offered += INGEST_BATCH_ROWS
            except IngestBackpressureError:
                self.backpressure_events += 1
            next_send += self.interval
            self._halt.wait(max(0.0, next_send - time.monotonic()))

    def stop(self, timeout: float = 10.0) -> None:
        self._halt.set()
        self.join(timeout)


def run_race(
    queries: list[StarQuery],
    arrival_rate_hz: float,
    scale_factor: float = SCALE_FACTOR,
    ingest_rows_per_second: float = 0.0,
    seed: int = ARRIVAL_SEED,
) -> dict:
    """One open-loop run, optionally racing a streaming producer.

    Builds a fresh MVCC warehouse (fresh telemetry), starts the
    background driver (whose cycle hook applies staged batches at scan
    boundaries), submits every query at seeded exponential
    inter-arrival gaps while the producer streams appends, blocks on
    all results, acks the tail of the producer's batches, and stops
    cleanly.  Returns the latency summary, the collected result rows,
    and the ingest telemetry.
    """
    warehouse = _build_warehouse(scale_factor)
    rng = random.Random(seed)
    service = warehouse.start_service()
    producer = None
    try:
        if ingest_rows_per_second > 0:
            producer = _Producer(warehouse, ingest_rows_per_second)
            producer.start()
        handles = []
        for query in queries:
            time.sleep(rng.expovariate(arrival_rate_hz))
            handles.append(warehouse.submit(query))
        results = [
            handle.results(timeout=RESULT_TIMEOUT) for handle in handles
        ]
        if producer is not None:
            producer.stop()
            for ticket in producer.tickets:
                ticket.result(timeout=RESULT_TIMEOUT)
        freshness = measure_freshness(warehouse)
        # every committed row is visible to a fresh snapshot, so a
        # final pass over the mutated dataset must equal the reference
        # evaluator run on the same (post-ingest) catalog
        final_handles = [warehouse.submit(query) for query in queries]
        final_results = [
            handle.results(timeout=RESULT_TIMEOUT)
            for handle in final_handles
        ]
    finally:
        if producer is not None:
            producer.stop()
        warehouse.stop_service()
    expected = [
        evaluate_star_query(query, warehouse.catalog) for query in queries
    ]
    ingest_stats = warehouse.stats()["ingest"]
    warehouse.close()
    return {
        "arrival_rate_hz": arrival_rate_hz,
        "results": results,
        "identical": final_results == expected,
        "summary": service.latency_summary(),
        "queries": len(handles),
        "rows_applied": ingest_stats["rows_applied"],
        "rows_per_second": ingest_stats["rows_per_second"],
        "backpressure_events": (
            0 if producer is None else producer.backpressure_events
        ),
        "visibility_cycles": freshness["visibility_cycles"],
        "probe_saw_rows": freshness["probe_saw_rows"],
    }


def measure_freshness(warehouse: Warehouse) -> dict:
    """Ack one batch, probe immediately, report the cycle lag.

    The INGEST ack means applied, so a probe admitted after the ack
    stamps a snapshot that already covers the batch; it must therefore
    count the new rows, and complete within the gate's two scan
    cycles of the ack.
    """
    probe = probe_query()
    before = warehouse.submit(probe).results(timeout=RESULT_TIMEOUT)
    batch = warehouse.catalog.table(warehouse.star.fact.name).all_rows()[:16]
    ticket = warehouse.ingest(fact_rows=batch)
    ticket.result(timeout=RESULT_TIMEOUT)
    acked_at = warehouse.cjoin.scan.cycles_completed
    after = warehouse.submit(probe).results(timeout=RESULT_TIMEOUT)
    done_at = warehouse.cjoin.scan.cycles_completed
    return {
        "visibility_cycles": done_at - acked_at,
        "probe_saw_rows": after[0][0] - before[0][0] == len(batch),
    }


def measure_ingest_flatness(
    scale_factor: float = SCALE_FACTOR,
    count: int = QUERIES_PER_RUN,
    arrival_rate_hz: float = ARRIVAL_RATE_HZ,
    ingest_rows_per_second: float = INGEST_RATE_ROWS,
) -> dict:
    """Quiet-vs-racing comparison; the flatness headline.

    Returns ``quiet``/``racing`` run dicts, the ``flatness`` ratio
    (p95 quiet / p95 racing), ``identical`` — whether both runs match
    the reference evaluator over their final datasets — and the racing
    run's freshness measurements.
    """
    queries = ingest_queries(count)
    quiet = run_race(queries, arrival_rate_hz, scale_factor)
    racing = run_race(
        queries,
        arrival_rate_hz,
        scale_factor,
        ingest_rows_per_second=ingest_rows_per_second,
    )
    p95_quiet = quiet["summary"]["p95"]
    p95_racing = racing["summary"]["p95"]
    return {
        "quiet": quiet,
        "racing": racing,
        "flatness": p95_quiet / p95_racing if p95_racing > 0 else 0.0,
        "identical": quiet["identical"] and racing["identical"],
    }


def _format_run(tag: str, run: dict) -> str:
    summary = run["summary"]
    return (
        f"{tag}: rate {run['arrival_rate_hz']:.1f}/s, "
        f"{run['queries']} queries, "
        f"p50 {summary['p50'] * 1e3:.1f} ms, "
        f"p95 {summary['p95'] * 1e3:.1f} ms, "
        f"{run['rows_applied']} rows applied "
        f"({run['rows_per_second']:.0f}/s, "
        f"{run['backpressure_events']} backpressure), "
        f"visible in {run['visibility_cycles']:.2f} cycles"
    )


def test_ingest_latency_flat():
    """Streaming >= 2k rows/s must cost < 2x the quiet p95, and acked
    rows must be visible within two scan cycles."""
    measured = measure_ingest_flatness()
    print()
    print(_format_run("quiet", measured["quiet"]))
    print(_format_run("racing", measured["racing"]))
    print(f"flatness p95(quiet)/p95(racing): {measured['flatness']:.2f}")
    racing = measured["racing"]
    assert measured["identical"], "results diverged from reference"
    assert racing["rows_applied"] >= INGEST_BATCH_ROWS, (
        "the producer applied no batches; the race never happened"
    )
    assert racing["probe_saw_rows"], "acked rows invisible to the probe"
    assert racing["visibility_cycles"] <= REQUIRED_VISIBILITY_CYCLES, (
        f"acked rows took {racing['visibility_cycles']:.2f} scan cycles "
        f"to become visible (gate: {REQUIRED_VISIBILITY_CYCLES})"
    )
    assert measured["flatness"] >= REQUIRED_FLATNESS, (
        f"latency not flat under ingest: p95 grew "
        f"{1.0 / max(measured['flatness'], 1e-9):.1f}x"
    )


def _smoke() -> int:
    """Seconds-scale CI pass: race, ack, visible probe, clean stop."""
    queries = ingest_queries(6)
    run = run_race(
        queries,
        arrival_rate_hz=64.0,
        scale_factor=0.001,
        ingest_rows_per_second=2000.0,
    )
    print(_format_run("smoke", run))
    if not run["identical"]:
        print("FAIL: smoke results diverged from the reference evaluator")
        return 1
    if run["rows_applied"] < INGEST_BATCH_ROWS:
        print("FAIL: smoke run applied no ingest batches")
        return 1
    if not run["probe_saw_rows"]:
        print("FAIL: acked rows were not visible to the probe")
        return 1
    if run["visibility_cycles"] > REQUIRED_VISIBILITY_CYCLES:
        print(
            f"FAIL: acked rows took {run['visibility_cycles']:.2f} "
            f"cycles to become visible"
        )
        return 1
    print("ingest flatness smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--smoke"]:
        return _smoke()
    if argv:
        print(f"unknown arguments {argv}; expected --smoke or nothing")
        return 2
    measured = measure_ingest_flatness()
    print(_format_run("quiet", measured["quiet"]))
    print(_format_run("racing", measured["racing"]))
    print(f"flatness p95(quiet)/p95(racing): {measured['flatness']:.2f}")
    print(f"identical to reference: {measured['identical']}")
    return 0 if measured["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
