"""Figure 6 — predictability of query response time (template Q4.2).

Paper section 6.2.2: going from 1 to 256 concurrent queries grows
CJOIN's response time by < 30%, System X's by ~19x, PostgreSQL's by
~66x; CJOIN's response-time standard deviation stays within ~0.5% of
the mean.  The CJOIN series comes from the closed-loop event
simulator (per-query records), the comparators from their analytic
models.
"""

from benchmarks.conftest import run_and_verify


def test_fig6_response_time_predictability(benchmark):
    run_and_verify(benchmark, "fig6")
