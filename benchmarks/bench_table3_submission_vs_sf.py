"""Table 3 — influence of data scale on query submission overhead.

Paper section 6.2.4: submission grows only sub-linearly with sf (0.4s
at sf=1, 0.7s at sf=10, 2.4s at sf=100) because SSB dimensions grow
much more slowly than the fact table; consequently the ratio of
submission to response time *shrinks* as the warehouse grows — the
effect behind CJOIN's rising normalized throughput in Figure 8.
"""

from benchmarks.conftest import run_and_verify


def test_table3_submission_overhead_vs_scale(benchmark):
    run_and_verify(benchmark, "tab3")
