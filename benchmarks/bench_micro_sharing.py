"""Micro-benchmarks of the *real* pipeline's work sharing.

Not a paper artifact — supporting evidence that the implemented
operator (not just its model) shares work: one CJOIN pass answers n
queries against n baseline passes, with measured wall time and page
counts on a milli-scale SSB instance.
"""

from repro.baseline import QueryAtATimeEngine
from repro.cjoin import CJoinOperator
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats


def _run_cjoin(catalog, star, queries):
    operator = CJoinOperator(catalog, star, buffer_pool=BufferPool(64))
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    return [handle.results() for handle in handles]


def _run_baseline(catalog, star, queries):
    engine = QueryAtATimeEngine(catalog, star, BufferPool(64))
    return engine.execute_concurrent(queries)


def test_cjoin_wall_time_for_eight_queries(benchmark, ssb_bench, bench_workload):
    catalog, star = ssb_bench
    results = benchmark(_run_cjoin, catalog, star, bench_workload)
    assert len(results) == len(bench_workload)


def test_baseline_wall_time_for_eight_queries(
    benchmark, ssb_bench, bench_workload
):
    catalog, star = ssb_bench
    results = benchmark(_run_baseline, catalog, star, bench_workload)
    assert len(results) == len(bench_workload)


def test_scan_sharing_factor():
    """CJOIN reads the fact table ~once; the baseline reads it n times.

    Uses a larger instance than the wall-time benches so the fact table
    dwarfs the buffer pool, as it would in a real warehouse.
    """
    from repro.ssb.generator import load_ssb
    from repro.ssb.queries import ssb_workload_generator

    catalog, star = load_ssb(scale_factor=0.002, seed=23)
    generator = ssb_workload_generator(seed=4, catalog=catalog)
    bench_workload = generator.generate(8, selectivity=0.1)
    fact_pages = catalog.table("lineorder").page_count
    n = len(bench_workload)

    cjoin_stats = IOStats()
    operator = CJoinOperator(
        catalog, star, buffer_pool=BufferPool(8, cjoin_stats)
    )
    for query in bench_workload:
        operator.submit(query)
    operator.run_until_drained()

    baseline_stats = IOStats()
    engine = QueryAtATimeEngine(
        catalog, star, BufferPool(8, baseline_stats)
    )
    engine.execute_concurrent(bench_workload)

    print(
        f"\nfact pages: {fact_pages}; queries: {n}; "
        f"cjoin disk reads: {cjoin_stats.disk_reads} "
        f"(seq {cjoin_stats.sequential_fraction:.0%}); "
        f"baseline disk reads: {baseline_stats.disk_reads} "
        f"(seq {baseline_stats.sequential_fraction:.0%})"
    )
    # the baseline's lockstep-ish round-robin lets followers ride the
    # buffer pool, so its read count is below the ideal n-fold blowup;
    # the sharing factor is still large and the access-pattern gap clear
    assert cjoin_stats.disk_reads < baseline_stats.disk_reads / 2
    assert cjoin_stats.sequential_fraction > 0.85
    assert baseline_stats.sequential_fraction < 0.75
