"""Table 2 — influence of predicate selectivity on submission time.

Paper section 6.2.3: submission grows from 1.6s (s=0.1%) through 2.4s
(s=1%) to 11.6s (s=10%) as dimension-predicate evaluation and hash
table updates dominate; the fixed stall/dispatch costs matter only at
low s.  The modeled values are fitted to exactly this table (see
repro/sim/costs.py) and must stay within 50%.

The real-path companion check verifies the same *mechanism*: admitting
a query that selects more dimension rows costs proportionally more.
"""

from benchmarks.conftest import run_and_verify
from repro.cjoin import CJoinOperator
from repro.ssb.queries import ssb_workload_generator


def test_table2_submission_time_vs_selectivity(benchmark):
    run_and_verify(benchmark, "tab2")


def test_real_admission_loads_rows_proportional_to_selectivity(ssb_bench):
    catalog, star = ssb_bench
    loaded = {}
    for selectivity in (0.05, 0.5):
        generator = ssb_workload_generator(seed=3, catalog=catalog)
        operator = CJoinOperator(catalog, star)
        operator.submit(generator.generate_from("Q3.1", selectivity))
        loaded[selectivity] = operator.manager.timings.dimension_rows_loaded[0]
    assert loaded[0.5] > loaded[0.05]
