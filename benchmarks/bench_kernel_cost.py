"""Per-tuple cost of the batch kernels + shard-transport data path.

Not a paper artifact — the acceptance gate for the PR-8 raw-speed
pass (DESIGN.md section 14), tracking two ratios:

* ``kernel_per_tuple_cost`` — drain seconds per scanned tuple with
  the batch kernels OFF (the PR-1 per-row loops) over the same cost
  with the default kernel (``kernel='auto'``).  Above 1.0 the kernels
  make every scanned tuple cheaper; the gate requires >= 1.1 on the
  headline workload shape (32 concurrent queries, selectivity 1%).
* ``shm_vs_pickle_transport`` — per-drain data-path seconds of the
  'pickle' process transport (serialize every shard's rows, push them
  through a pipe, deserialize) over the 'shm' transport with a warm
  published segment (attach + decode each worker's slice;
  EXPERIMENTS.md section 11).  Above 1.0 shared memory hands workers
  their shards faster than pickling — on top of shrinking per-drain
  pipe traffic from megabytes of rows to a fixed few hundred bytes
  of layout descriptor, which this bench also reports.

Both ratios feed scripts/check_bench_regression.py via
BENCH_baseline.json.  ``--smoke`` runs milli-scale correctness-only
passes (kernel/legacy result equality, transport row equality) for
the CI smoke gate, where shared-runner timing is not trustworthy.

Usage::

    python benchmarks/bench_kernel_cost.py [--smoke]
"""

from __future__ import annotations

import argparse
import pickle
import time

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.cjoin.kernels import resolve
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator
from repro.storage.buffer import BufferPool
from repro.storage.partition import contiguous_spans
from repro.storage.shm import publish_fact_rows

#: the paper's default operating point (bench_batch_vs_tuple's shape)
CONCURRENT_QUERIES = 32
SELECTIVITY = 0.01
SCALE_FACTOR = 0.005
BATCH_SIZE = 512
TIMING_ROUNDS = 3

#: transport bench shape: the scale-up gate's instance, sharded the
#: way a 4-worker drain shards it
TRANSPORT_SCALE_FACTOR = 0.02
TRANSPORT_WORKERS = 4


def _workload(catalog, count=CONCURRENT_QUERIES, selectivity=SELECTIVITY):
    generator = ssb_workload_generator(seed=4, catalog=catalog)
    return generator.generate(count, selectivity=selectivity)


def _drain_seconds(catalog, star, queries, kernel, batch_size=BATCH_SIZE):
    operator = CJoinOperator(
        catalog,
        star,
        buffer_pool=BufferPool(512),
        executor_config=ExecutorConfig(
            execution="batched", batch_size=batch_size, kernel=kernel
        ),
    )
    handles = [operator.submit(query) for query in queries]
    started = time.perf_counter()
    operator.run_until_drained()
    elapsed = time.perf_counter() - started
    return elapsed, [handle.results() for handle in handles], operator.stats


def measure_kernel_cost(
    rounds: int = TIMING_ROUNDS,
    scale_factor: float = SCALE_FACTOR,
    queries: int = CONCURRENT_QUERIES,
    selectivity: float = SELECTIVITY,
) -> dict:
    """Best-of-``rounds`` kernel='off' vs kernel='auto' drain comparison.

    Returns per-tuple nanosecond costs for both modes, the cost ratio
    (off over auto; higher = kernels cheaper), the resolved kernel
    name, and an ``identical`` result-equality flag.  Shared by the
    gate test below and scripts/check_bench_regression.py.
    """
    catalog, star = load_ssb(scale_factor=scale_factor, seed=23)
    workload = _workload(catalog, queries, selectivity)
    off_best = kernel_best = float("inf")
    off_results = kernel_results = None
    stats = None
    for _ in range(rounds):
        elapsed, off_results, stats = _drain_seconds(
            catalog, star, workload, "off"
        )
        off_best = min(off_best, elapsed)
        elapsed, kernel_results, stats = _drain_seconds(
            catalog, star, workload, "auto"
        )
        kernel_best = min(kernel_best, elapsed)
    tuples = stats.tuples_scanned
    return {
        "kernel": resolve("auto").name,
        "off_seconds": off_best,
        "kernel_seconds": kernel_best,
        "off_ns_per_tuple": off_best / tuples * 1e9,
        "kernel_ns_per_tuple": kernel_best / tuples * 1e9,
        "cost_ratio": off_best / kernel_best,
        "tuples_scanned": tuples,
        "identical": kernel_results == off_results,
    }


def measure_shard_transport(
    rounds: int = TIMING_ROUNDS,
    scale_factor: float = TRANSPORT_SCALE_FACTOR,
    workers: int = TRANSPORT_WORKERS,
) -> dict:
    """Per-drain shard-transport data path: warm shm vs pickle.

    Times exactly what each process transport does to hand ``workers``
    workers their fact shards.  Pickle: serialize each shard's rows
    and deserialize them (what crosses the pool's pipe every drain).
    Shm: attach the published segment and decode each worker's slice —
    the publish itself happens once per fact table (cached across
    drains by :mod:`repro.cjoin.parallel`), so it is reported
    separately as ``publish_seconds``, not charged to the warm path.
    Returns the ``speedup`` ratio (pickle over shm; higher = shm
    faster) plus per-drain pipe-byte counts for both transports.
    """
    from repro.storage.shm import attach_fact_slice

    catalog, star = load_ssb(scale_factor=scale_factor, seed=31)
    rows = catalog.table(star.fact.name).all_rows()
    spans = contiguous_spans(len(rows), workers)
    started = time.perf_counter()
    segment, layout = publish_fact_rows(rows, star.fact.arity)
    publish_seconds = time.perf_counter() - started
    try:
        shm_best = pickle_best = float("inf")
        shm_rows = pickle_rows = None
        for _ in range(rounds):
            started = time.perf_counter()
            shm_rows = [
                attach_fact_slice(layout, start, end) for start, end in spans
            ]
            shm_best = min(shm_best, time.perf_counter() - started)
            started = time.perf_counter()
            blobs = [
                pickle.dumps(
                    tuple(rows[start:end]), pickle.HIGHEST_PROTOCOL
                )
                for start, end in spans
            ]
            pickle_rows = [pickle.loads(blob) for blob in blobs]
            pickle_best = min(pickle_best, time.perf_counter() - started)
        identical = all(
            list(map(tuple, decoded)) == list(shard)
            for decoded, shard in zip(shm_rows, pickle_rows)
        )
        pickle_bytes = sum(len(blob) for blob in blobs)
        shm_bytes = len(
            pickle.dumps(layout, pickle.HIGHEST_PROTOCOL)
        ) * workers
    finally:
        segment.close()
        segment.unlink()
    return {
        "workers": workers,
        "rows": len(rows),
        "publish_seconds": publish_seconds,
        "shm_seconds": shm_best,
        "pickle_seconds": pickle_best,
        "speedup": pickle_best / shm_best,
        "pickle_pipe_bytes": pickle_bytes,
        "shm_pipe_bytes": shm_bytes,
        "identical": identical,
    }


def test_kernels_beat_legacy_batch_loops():
    """kernel='auto' drains cheaper per tuple than the PR-1 loops."""
    measured = measure_kernel_cost()
    print(
        f"\n{CONCURRENT_QUERIES} queries, s={SELECTIVITY:.0%}, "
        f"sf={SCALE_FACTOR}: off {measured['off_ns_per_tuple']:.0f} "
        f"ns/tuple, {measured['kernel']} kernel "
        f"{measured['kernel_ns_per_tuple']:.0f} ns/tuple -> "
        f"{measured['cost_ratio']:.2f}x cheaper "
        f"({measured['tuples_scanned']} tuples scanned)"
    )
    assert measured["identical"]
    assert measured["cost_ratio"] >= 1.1, (
        f"{measured['kernel']} kernel only {measured['cost_ratio']:.2f}x "
        f"cheaper per tuple than the legacy batch loops"
    )


def test_shm_transport_beats_pickle():
    """Warm shm hands workers their shards faster than pickling."""
    measured = measure_shard_transport()
    print(
        f"\n{measured['rows']} fact rows over {measured['workers']} "
        f"workers: pickle {measured['pickle_seconds'] * 1e3:.1f} ms "
        f"({measured['pickle_pipe_bytes']} pipe bytes), shm "
        f"{measured['shm_seconds'] * 1e3:.1f} ms "
        f"({measured['shm_pipe_bytes']} pipe bytes, publish "
        f"{measured['publish_seconds'] * 1e3:.1f} ms once) -> "
        f"{measured['speedup']:.2f}x"
    )
    assert measured["identical"]
    assert measured["speedup"] >= 1.0, (
        f"shm transport slower than pickle "
        f"({measured['shm_seconds']:.3f}s vs "
        f"{measured['pickle_seconds']:.3f}s)"
    )
    assert measured["shm_pipe_bytes"] < measured["pickle_pipe_bytes"] / 100


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)
    if args.smoke:
        # milli-scale, correctness-only: shared-runner timing is noise
        kernel = measure_kernel_cost(
            rounds=1, scale_factor=0.001, queries=8, selectivity=0.1
        )
        transport = measure_shard_transport(
            rounds=1, scale_factor=0.002, workers=2
        )
        print(
            f"kernel smoke: {kernel['kernel']} kernel vs legacy loops -> "
            f"{'ok' if kernel['identical'] else 'MISMATCH'}"
        )
        print(
            f"transport smoke: shm vs pickle shard rows "
            f"({transport['rows']} rows, {transport['workers']} workers) "
            f"-> {'ok' if transport['identical'] else 'MISMATCH'}"
        )
        ok = kernel["identical"] and transport["identical"]
        print("kernel-cost smoke ok" if ok else "kernel-cost smoke FAILED")
        return 0 if ok else 1
    kernel = measure_kernel_cost()
    transport = measure_shard_transport()
    print(
        f"kernel cost: off {kernel['off_ns_per_tuple']:.0f} ns/tuple vs "
        f"{kernel['kernel']} {kernel['kernel_ns_per_tuple']:.0f} ns/tuple "
        f"-> {kernel['cost_ratio']:.2f}x (identical="
        f"{kernel['identical']})"
    )
    print(
        f"shard transport: pickle {transport['pickle_seconds'] * 1e3:.1f} "
        f"ms vs warm shm {transport['shm_seconds'] * 1e3:.1f} ms -> "
        f"{transport['speedup']:.2f}x; pipe bytes "
        f"{transport['pickle_pipe_bytes']} -> {transport['shm_pipe_bytes']} "
        f"(identical={transport['identical']})"
    )
    ok = kernel["identical"] and transport["identical"]
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
