"""Restart recovery: crash durability and warm-start speed (ISSUE 10).

The acceptance gate for the durable-storage subsystem (DESIGN.md
section 16, EXPERIMENTS.md section 13), in two halves:

* **correctness** — a child process opens a durable warehouse, applies
  ``CRASH_BATCHES`` ingest batches (each acked only after its WAL
  record is fsynced), then dies via ``os._exit`` WITHOUT closing —
  simulating power loss with a WAL tail past the last snapshot.  The
  parent reopens the data directory and requires ``acked_survival ==
  1.0``: every row the child reported ``ACKED`` is visible after
  recovery, and the ingest generation resumes past the last ack.
* **speed** — ``restart_recovery = cold_generate_seconds /
  warm_open_seconds``: the cost of regenerating and loading the SSB
  dataset from scratch over the cost of ``Warehouse.open`` on the
  durable directory (decode columns + replay the WAL tail).  Higher is
  better; the gate requires at least parity (a warm restart must never
  be slower than regeneration, the whole point of the subsystem).

``measure_restart_recovery`` feeds the ``restart_recovery`` ratio
tracked by scripts/check_bench_regression.py; ``--smoke`` runs a
seconds-scale pass (seed -> crash child -> recover -> survival check)
for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_restart_recovery.py --smoke
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALE_FACTOR = 0.01
SMOKE_SCALE_FACTOR = 0.002
#: acked single-template batches the crash child applies before dying
CRASH_BATCHES = 4
BATCH_ROWS = 200
#: the child's deliberate exit code — distinguishes the simulated
#: power loss from a harness or library failure
CRASH_EXIT_CODE = 137
CHILD_TIMEOUT = 300.0
#: a warm restart must at least match regenerating from scratch
REQUIRED_SPEEDUP = 1.0


def _child_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join(
        [src, existing]
    )
    return env


def _crash_child(data_dir: str, batches: int, batch_rows: int) -> int:
    """Child mode: ack ``batches`` ingest batches, then lose power.

    Each batch clones existing fact rows (every foreign key joins),
    applies at a scan boundary, and prints ``ACKED <generation>
    <rows>`` only once the ticket resolves — which the durability
    contract ties to an fsynced WAL record.  The final ``os._exit``
    skips every destructor and the close-time checkpoint, leaving the
    WAL tail as the only record of the acked batches.
    """
    from repro.engine import Warehouse

    warehouse = Warehouse.open(data_dir)
    template = warehouse.catalog.table(
        warehouse.star.fact.name
    ).all_rows()[:batch_rows]
    for _ in range(batches):
        ticket = warehouse.ingest(fact_rows=list(template))
        warehouse.apply_pending_ingest()
        result = ticket.result(timeout=60.0)
        print(f"ACKED {result['generation']} {result['rows']}", flush=True)
    os._exit(CRASH_EXIT_CODE)


def measure_restart_recovery(
    scale_factor: float = SCALE_FACTOR,
    crash_batches: int = CRASH_BATCHES,
    batch_rows: int = BATCH_ROWS,
) -> dict:
    """One full cold-generate / seed / crash / recover cycle."""
    from repro.engine import Warehouse

    with tempfile.TemporaryDirectory(prefix="bench-restart-") as tmp:
        data_dir = os.path.join(tmp, "warehouse")

        # cold path: regenerate + load, nothing durable (the thing a
        # restart without this subsystem would have to repeat)
        started = time.perf_counter()
        cold = Warehouse.from_ssb(scale_factor=scale_factor)
        cold_generate_seconds = time.perf_counter() - started
        base_rows = cold.catalog.table(cold.star.fact.name).row_count
        cold.close()

        # seed the durable copy (untimed: a one-time cost)
        Warehouse.from_ssb(
            scale_factor=scale_factor, data_dir=data_dir
        ).close()

        # crash a child mid-stream, past several durable acks
        child = subprocess.run(
            [
                sys.executable,
                os.fspath(Path(__file__).resolve()),
                "--child",
                data_dir,
                str(crash_batches),
                str(batch_rows),
            ],
            capture_output=True,
            text=True,
            env=_child_env(),
            timeout=CHILD_TIMEOUT,
        )
        if child.returncode != CRASH_EXIT_CODE:
            raise AssertionError(
                f"crash child exited {child.returncode}, expected "
                f"{CRASH_EXIT_CODE}:\n{child.stdout}\n{child.stderr}"
            )
        acked = [
            (int(generation), int(rows))
            for line in child.stdout.splitlines()
            if line.startswith("ACKED ")
            for _, generation, rows in [line.split()]
        ]
        acked_rows = sum(rows for _, rows in acked)

        # warm path: open the durable directory, replay the WAL tail
        started = time.perf_counter()
        warm = Warehouse.open(data_dir)
        warm_open_seconds = time.perf_counter() - started
        replay = warm.last_replay
        recovered_rows = warm.catalog.table(
            warm.star.fact.name
        ).row_count
        generation_resumed = warm.ingest_buffer.generation >= max(
            (generation for generation, _ in acked), default=0
        )
        warm.close()

    survived = min(recovered_rows - base_rows, acked_rows)
    return {
        "cold_generate_seconds": cold_generate_seconds,
        "warm_open_seconds": warm_open_seconds,
        "speedup": cold_generate_seconds / max(warm_open_seconds, 1e-9),
        "base_rows": base_rows,
        "acked_batches": len(acked),
        "acked_rows": acked_rows,
        "recovered_rows": recovered_rows,
        "acked_survival": (
            survived / acked_rows if acked_rows else 1.0
        ),
        "generation_resumed": generation_resumed,
        "wal_records_replayed": replay.wal_records if replay else 0,
        "identical": recovered_rows == base_rows + acked_rows,
    }


def _format(measured: dict) -> str:
    return (
        f"cold generate: {measured['cold_generate_seconds']:.3f}s  "
        f"warm open: {measured['warm_open_seconds']:.3f}s  "
        f"speedup: {measured['speedup']:.1f}x  "
        f"acked rows: {measured['acked_rows']} "
        f"(survival {measured['acked_survival']:.2f}, "
        f"{measured['wal_records_replayed']} WAL records replayed)"
    )


def test_restart_recovery_durable_and_fast():
    """Every acked row survives the crash; warm restart beats cold."""
    measured = measure_restart_recovery()
    print()
    print(_format(measured))
    assert measured["acked_batches"] == CRASH_BATCHES
    assert measured["acked_survival"] == 1.0, (
        f"acked rows lost in the crash: {measured['recovered_rows']} "
        f"recovered vs {measured['base_rows']} + {measured['acked_rows']}"
    )
    assert measured["identical"], "recovery applied a partial batch"
    assert measured["generation_resumed"], (
        "the ingest generation did not resume past the last ack"
    )
    assert measured["wal_records_replayed"] >= 1, (
        "the crash never exercised the WAL replay path"
    )
    assert measured["speedup"] >= REQUIRED_SPEEDUP, (
        f"warm restart slower than regeneration: "
        f"{measured['speedup']:.2f}x < {REQUIRED_SPEEDUP}x"
    )


def _smoke() -> int:
    """Seconds-scale CI pass: crash, recover, every acked row back."""
    measured = measure_restart_recovery(
        scale_factor=SMOKE_SCALE_FACTOR, crash_batches=2, batch_rows=50
    )
    print(_format(measured))
    if measured["acked_survival"] != 1.0 or not measured["identical"]:
        print("FAIL: acked rows did not survive the crash")
        return 1
    if not measured["generation_resumed"]:
        print("FAIL: ingest generation did not resume past the last ack")
        return 1
    if measured["wal_records_replayed"] < 1:
        print("FAIL: the crash never exercised WAL replay")
        return 1
    print("restart recovery smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["--child"]:
        data_dir, batches, batch_rows = argv[1], int(argv[2]), int(argv[3])
        return _crash_child(data_dir, batches, batch_rows)
    if argv == ["--smoke"]:
        return _smoke()
    if argv:
        print(f"unknown arguments {argv}; expected --smoke or nothing")
        return 2
    measured = measure_restart_recovery()
    print(_format(measured))
    ok = (
        measured["acked_survival"] == 1.0
        and measured["identical"]
        and measured["speedup"] >= REQUIRED_SPEEDUP
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
