"""Figure 7 — influence of predicate selectivity on throughput.

Paper section 6.2.3: n=128, sf=100, s swept over 0.1%, 1%, 10%.
Expected shape: every system slows as s grows; CJOIN stays ahead of
System X everywhere but the gap narrows at s=10% (dimension hash
tables outgrow the L2 cache and admission overhead balloons);
PostgreSQL's s=10% run is reported as not-completing (memory
overcommit), as in the paper.
"""

from benchmarks.conftest import run_and_verify


def test_fig7_selectivity_influence(benchmark):
    run_and_verify(benchmark, "fig7")
