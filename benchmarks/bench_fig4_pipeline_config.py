"""Figure 4 — the effect of pipeline configuration on throughput.

Paper section 6.2.1: horizontal (all Filters in one Stage, threads
shared) vs vertical (one Stage per Filter) mappings, swept over 1-5
stage threads at n=128, sf=100, s=1%.

Expected shape: horizontal scales with its thread count and beats
vertical whenever it has more than one thread; vertical is flat (the
inter-stage transfer cost eats the parallelism).
"""

from benchmarks.conftest import run_and_verify


def test_fig4_pipeline_configuration(benchmark):
    run_and_verify(benchmark, "fig4")
