"""Ablation benches for the design choices DESIGN.md calls out.

* filter ordering: fixed admission order vs drop-rate ranking vs
  A-Greedy conditional ordering (section 3.4) — measured as probes per
  scanned tuple on a skewed workload;
* probe-skip optimization (section 3.2.2) — probes saved when many
  queries reference disjoint dimension subsets;
* batched queue transfer (section 4) — wall time vs batch size.
"""

import pytest

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.cjoin.optimizer import AGreedyPolicy, DropRatePolicy, FixedOrderPolicy
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Comparison
from repro.query.star import StarQuery
from repro.storage.buffer import BufferPool


def _skewed_queries(catalog):
    """Queries whose selective dimension is NOT first in admission order.

    Each query references date first with a pass-everything predicate
    and part second with a near-unique brand equality, so a fixed-order
    pipeline wastes one probe per tuple on the useless date filter
    while an adaptive one pulls the part filter to the front.
    """
    part = catalog.table("part")
    brand_index = part.schema.column_index("p_brand1")
    brands = sorted({row[brand_index] for row in part.all_rows()})
    queries = []
    for i in range(4):
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={
                    "date": Comparison("d_year", ">=", 1900),  # selects all
                    "part": Comparison("p_brand1", "=", brands[i]),
                },
                aggregates=[AggregateSpec("count")],
            )
        )
    return queries


def _probes_per_tuple(catalog, star, queries, policy):
    operator = CJoinOperator(
        catalog,
        star,
        ordering_policy=policy,
        executor_config=ExecutorConfig(
            batch_size=128, reoptimize_interval=256, profile_sample_rate=16
        ),
    )
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    assert all(handle.done for handle in handles)
    return operator.stats.probes_per_tuple


class TestFilterOrderingAblation:
    def test_adaptive_ordering_reduces_probes(self, ssb_bench):
        catalog, star = ssb_bench
        queries = _skewed_queries(catalog)
        fixed = _probes_per_tuple(catalog, star, queries, FixedOrderPolicy())
        drop_rate = _probes_per_tuple(
            catalog, star, queries, DropRatePolicy()
        )
        agreedy = _probes_per_tuple(catalog, star, queries, AGreedyPolicy())
        print(
            f"\nprobes/tuple: fixed={fixed:.2f} "
            f"drop-rate={drop_rate:.2f} a-greedy={agreedy:.2f}"
        )
        # on this workload the selective filter drops ~all tuples, so a
        # correct reordering should approach 1 probe/tuple vs fixed ~2
        assert drop_rate < fixed * 0.8
        assert agreedy < fixed * 0.8

    def test_agreedy_wall_time(self, benchmark, ssb_bench):
        catalog, star = ssb_bench
        queries = _skewed_queries(catalog)
        benchmark(
            _probes_per_tuple, catalog, star, queries, AGreedyPolicy()
        )


class TestProbeSkipAblation:
    def _queries(self):
        """A mix where the skip can fire.

        The skip triggers at a Filter when every query a tuple is still
        relevant to does NOT reference that Filter's dimension.  Group 1
        queries reference customer (very selective) AND part; they are
        admitted first so the customer Filter precedes the part Filter.
        A tuple failing all customer predicates loses every group-1 bit
        there and arrives at the part Filter carrying only group-2
        (date-only) bits -> the part probe is skipped.
        """
        queries = []
        for digit in range(4):
            queries.append(
                StarQuery.build(
                    "lineorder",
                    dimension_predicates={
                        "customer": Comparison(
                            "c_city", "=", f"UNITED ST{digit}"
                        ),
                        "part": Comparison("p_mfgr", "=", f"MFGR#{digit + 1}"),
                    },
                    aggregates=[AggregateSpec("count")],
                )
            )
        for year in (1992, 1993):
            queries.append(
                StarQuery.build(
                    "lineorder",
                    dimension_predicates={
                        "date": Comparison("d_year", "=", year)
                    },
                    aggregates=[AggregateSpec("count")],
                )
            )
        return queries

    def _run(self, catalog, star, probe_skip):
        operator = CJoinOperator(
            catalog,
            star,
            buffer_pool=BufferPool(64),
            probe_skip=probe_skip,
            ordering_policy=FixedOrderPolicy(),  # keep customer first
            # keep per-filter stat windows intact so skip counts are exact
            executor_config=ExecutorConfig(
                reoptimize_interval=0, profile_sample_rate=0
            ),
        )
        handles = [operator.submit(query) for query in self._queries()]
        operator.run_until_drained()
        return (
            operator.stats.probes_total,
            operator.stats.probe_skips_total,
            [handle.results() for handle in handles],
        )

    def test_skip_saves_probes_without_changing_results(self, ssb_bench):
        catalog, star = ssb_bench
        probes_on, skips_on, results_on = self._run(catalog, star, True)
        probes_off, skips_off, results_off = self._run(catalog, star, False)
        print(
            f"\nprobes with skip: {probes_on} (skips {skips_on}); "
            f"without: {probes_off}"
        )
        assert results_on == results_off
        assert skips_off == 0
        assert skips_on > 0
        assert probes_on + skips_on == probes_off
        assert probes_on < probes_off


class TestAggregationModeAblation:
    """Hash vs sort output operators (section 3.1 offers both)."""

    @pytest.mark.parametrize("mode", ["hash", "sort"])
    def test_aggregation_mode_wall_time(
        self, benchmark, ssb_bench, bench_workload, mode
    ):
        catalog, star = ssb_bench

        def run():
            operator = CJoinOperator(
                catalog, star, aggregation_mode=mode
            )
            handles = [
                operator.submit(query) for query in bench_workload[:4]
            ]
            operator.run_until_drained()
            return handles

        handles = benchmark(run)
        assert all(handle.done for handle in handles)

    def test_modes_agree(self, ssb_bench, bench_workload):
        catalog, star = ssb_bench
        results = {}
        for mode in ("hash", "sort"):
            operator = CJoinOperator(catalog, star, aggregation_mode=mode)
            handles = [
                operator.submit(query) for query in bench_workload
            ]
            operator.run_until_drained()
            results[mode] = [handle.results() for handle in handles]
        assert results["hash"] == results["sort"]


class TestBatchingAblation:
    @pytest.mark.parametrize("batch_size", [8, 256], ids=["small", "large"])
    def test_batch_size_wall_time(
        self, benchmark, ssb_bench, bench_workload, batch_size
    ):
        catalog, star = ssb_bench

        def run():
            operator = CJoinOperator(
                catalog,
                star,
                executor_config=ExecutorConfig(batch_size=batch_size),
            )
            handles = [operator.submit(query) for query in bench_workload[:4]]
            operator.run_until_drained()
            return handles

        handles = benchmark(run)
        assert all(handle.done for handle in handles)
