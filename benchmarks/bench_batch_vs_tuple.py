"""Batched fast path vs tuple-at-a-time on a concurrent SSB scan.

Not a paper artifact — the acceptance gate for the vectorized
execution path (DESIGN.md section 5): on the paper's headline workload
shape (32 concurrent queries, selectivity 1%) the batched executor
must finish the shared scan at least 2x faster than the reference
tuple-at-a-time executor, while producing identical results.

Wall time is measured as best-of-N over the drain phase only
(submission cost is identical: admission is shared code), which keeps
the assertion stable under CI timing noise.
"""

from __future__ import annotations

import time

from repro.cjoin import CJoinOperator
from repro.cjoin.executor import ExecutorConfig
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator
from repro.storage.buffer import BufferPool

#: the paper's default operating point, scaled to a CI-sized instance
CONCURRENT_QUERIES = 32
SELECTIVITY = 0.01
SCALE_FACTOR = 0.005
BATCH_SIZE = 512
TIMING_ROUNDS = 3


def _workload(catalog):
    generator = ssb_workload_generator(seed=4, catalog=catalog)
    return generator.generate(CONCURRENT_QUERIES, selectivity=SELECTIVITY)


def _drain_seconds(catalog, star, queries, execution):
    operator = CJoinOperator(
        catalog,
        star,
        buffer_pool=BufferPool(512),
        executor_config=ExecutorConfig(
            execution=execution, batch_size=BATCH_SIZE
        ),
    )
    handles = [operator.submit(query) for query in queries]
    started = time.perf_counter()
    operator.run_until_drained()
    elapsed = time.perf_counter() - started
    return elapsed, [handle.results() for handle in handles], operator.stats


def measure_batch_vs_tuple(rounds: int = TIMING_ROUNDS) -> dict:
    """Best-of-``rounds`` tuple vs batched drain comparison.

    Shared by the acceptance test below and by
    scripts/check_bench_regression.py, which compares the speedup ratio
    against BENCH_baseline.json.
    """
    catalog, star = load_ssb(scale_factor=SCALE_FACTOR, seed=23)
    queries = _workload(catalog)
    tuple_best = float("inf")
    batched_best = float("inf")
    tuple_results = batched_results = None
    stats = None
    for _ in range(rounds):
        elapsed, tuple_results, _ = _drain_seconds(
            catalog, star, queries, "tuple"
        )
        tuple_best = min(tuple_best, elapsed)
        elapsed, batched_results, stats = _drain_seconds(
            catalog, star, queries, "batched"
        )
        batched_best = min(batched_best, elapsed)
    return {
        "tuple_seconds": tuple_best,
        "batched_seconds": batched_best,
        "speedup": tuple_best / batched_best,
        "identical": batched_results == tuple_results,
        "tuples_scanned": stats.tuples_scanned,
        "probes_per_tuple": stats.probes_per_tuple,
    }


def test_batched_beats_tuple_at_32_concurrent_queries():
    """The batched path drains a 32-query scan >= 2x faster."""
    measured = measure_batch_vs_tuple()
    print(
        f"\n{CONCURRENT_QUERIES} queries, s={SELECTIVITY:.0%}, "
        f"sf={SCALE_FACTOR}: tuple {measured['tuple_seconds'] * 1e3:.1f} ms, "
        f"batched {measured['batched_seconds'] * 1e3:.1f} ms, speedup "
        f"{measured['speedup']:.2f}x ({measured['tuples_scanned']} tuples "
        f"scanned, {measured['probes_per_tuple']:.2f} probes/tuple)"
    )
    assert measured["identical"]
    assert measured["speedup"] >= 2.0, (
        f"batched path only {measured['speedup']:.2f}x faster "
        f"(tuple {measured['tuple_seconds']:.3f}s vs batched "
        f"{measured['batched_seconds']:.3f}s)"
    )


def test_batched_wall_time_for_32_queries(benchmark, ssb_bench):
    """Track the batched drain cost itself (regression telemetry)."""
    catalog, star = ssb_bench

    def run():
        operator = CJoinOperator(
            catalog,
            star,
            buffer_pool=BufferPool(256),
            executor_config=ExecutorConfig(
                execution="batched", batch_size=BATCH_SIZE
            ),
        )
        handles = [operator.submit(query) for query in _workload(catalog)]
        operator.run_until_drained()
        return [handle.results() for handle in handles]

    results = benchmark(run)
    assert len(results) == CONCURRENT_QUERIES
