"""Figure 8 — influence of data scale on normalized throughput.

Paper section 6.2.4: n=128, s=1%, sf swept 1..100; throughput is
normalized by multiplying with sf.  Expected shape: System X *wins*
at sf=1 (CJOIN delivers ~85% of its throughput — the paper's honest
crossover), CJOIN wins by a large factor at sf=100 and beats
PostgreSQL everywhere; CJOIN's normalized curve *rises* with sf
because admission overhead amortizes.
"""

from benchmarks.conftest import run_and_verify


def test_fig8_data_scale_influence(benchmark):
    run_and_verify(benchmark, "fig8")
