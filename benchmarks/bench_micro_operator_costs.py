"""Micro-benchmarks of CJOIN's hot operations.

Supports the cost claims of section 3.2.3: processing one fact tuple
is K probes + K bit-vector ANDs, each of low and bounded cost, with
the per-probe cost independent of the number of registered queries.
"""

import random

from repro import bitvec
from repro.catalog.schema import Column, DataType, ForeignKey, StarSchema, TableSchema
from repro.cjoin.dimtable import DimensionHashTable
from repro.cjoin.filter import Filter
from repro.cjoin.tuples import FactTuple


def _star():
    dim = TableSchema(
        "d",
        [Column("id", DataType.INT), Column("v", DataType.INT)],
        primary_key="id",
    )
    fact = TableSchema(
        "f",
        [Column("d_id", DataType.INT)],
        foreign_keys=[ForeignKey("d_id", "d", "id")],
    )
    return StarSchema(fact=fact, dimensions={"d": dim})


def _loaded_filter(query_count: int, rows: int = 2000) -> Filter:
    star = _star()
    table = DimensionHashTable(star.dimension("d"))
    rng = random.Random(7)
    for query_id in range(1, query_count + 1):
        table.mark_query_referencing(query_id)
        selected = [(key, key) for key in rng.sample(range(rows), rows // 4)]
        table.register_selected_rows(query_id, selected)
    return Filter(table, star)


def _probe_loop(filter_, tuples):
    for fact_tuple in tuples:
        filter_.process(fact_tuple)


def _tuples(query_count: int, count: int = 2000):
    bits = bitvec.all_ones(query_count)
    rng = random.Random(13)
    return [
        FactTuple(i, i, (rng.randrange(2500),), bits) for i in range(count)
    ]


def test_probe_throughput_1_query(benchmark):
    filter_ = _loaded_filter(1)
    benchmark.pedantic(
        _probe_loop,
        setup=lambda: ((filter_, _tuples(1)), {}),
        rounds=20,
    )


def test_probe_throughput_128_queries(benchmark):
    """One probe still serves all 128 queries; cost stays the same

    order (the bit-vector AND grows by word count only).
    """
    filter_ = _loaded_filter(128)
    benchmark.pedantic(
        _probe_loop,
        setup=lambda: ((filter_, _tuples(128)), {}),
        rounds=20,
    )


def test_bitvec_and_256_wide(benchmark):
    mask_a = bitvec.all_ones(256)
    mask_b = bitvec.from_string("10" * 128)

    def and_loop():
        total = 0
        for _ in range(10_000):
            total += 1 if mask_a & mask_b else 0
        return total

    assert benchmark(and_loop) == 10_000


def test_distributor_routing(benchmark):
    """iter_query_ids cost on sparse vs dense relevance vectors."""
    dense = bitvec.all_ones(256)

    def route_loop():
        consumed = 0
        for _ in range(200):
            for _query_id in bitvec.iter_query_ids(dense):
                consumed += 1
        return consumed

    assert benchmark(route_loop) == 200 * 256
