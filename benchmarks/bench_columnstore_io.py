"""Column-store extension bench (paper section 5, "Column Stores").

Measures the I/O-volume reduction of the continuous merge-scan: CJOIN
over a column-store fact reads only the projected columns' pages,
proportionally to projection width, while producing identical results
to the row-store operator.
"""

from repro.catalog.catalog import Catalog
from repro.cjoin import CJoinOperator
from repro.cjoin.columnstore import ColumnStoreCJoinOperator, fact_columns_needed
from repro.ssb.generator import SSBGenerator
from repro.ssb.queries import ssb_workload_generator
from repro.ssb.schema import ssb_star_schema
from repro.storage.buffer import BufferPool
from repro.storage.column import ColumnStoreTable
from repro.storage.iostats import IOStats
from repro.storage.table import Table


def _setup():
    star = ssb_star_schema()
    generator = SSBGenerator(scale_factor=0.0005, seed=29)
    data = generator.generate_all()
    row_catalog = Catalog()
    column_catalog = Catalog()
    for name in ("date", "customer", "supplier", "part"):
        dim = Table.from_rows(star.dimension(name), data[name])
        row_catalog.register_table(dim)
        column_catalog.register_table(dim)
    fact_rows = data["lineorder"]
    row_catalog.register_table(Table.from_rows(star.fact, fact_rows))
    column_fact = ColumnStoreTable.from_rows(star.fact, fact_rows)
    column_catalog.register_table(column_fact)
    row_catalog.register_star(star)
    column_catalog.register_star(star)
    return star, row_catalog, column_catalog, column_fact


def test_column_store_reads_fewer_pages_for_same_answers():
    star, row_catalog, column_catalog, column_fact = _setup()
    generator = ssb_workload_generator(seed=6, catalog=row_catalog)
    queries = generator.generate(5, selectivity=0.1)
    needed = set()
    for query in queries:
        needed |= fact_columns_needed(query, star)

    row_stats = IOStats()
    row_operator = CJoinOperator(
        row_catalog, star, buffer_pool=BufferPool(8, row_stats)
    )
    row_handles = [row_operator.submit(query) for query in queries]
    row_operator.run_until_drained()

    column_stats = IOStats()
    column_operator = ColumnStoreCJoinOperator(
        column_catalog,
        star,
        column_fact,
        scanned_columns=needed,
        buffer_pool=BufferPool(8, column_stats),
    )
    column_handles = [column_operator.submit(query) for query in queries]
    column_operator.run_until_drained()

    for row_handle, column_handle in zip(row_handles, column_handles):
        assert row_handle.results() == column_handle.results()

    # Pages are not byte-comparable across layouts: a row page carries
    # all `arity` columns of its rows, a column page exactly one.
    # Compare data *volume* in column-page equivalents.
    arity = star.fact.arity
    row_volume = row_stats.disk_reads * arity
    column_volume = column_stats.disk_reads
    print(
        f"\nprojected {len(needed)}/{arity} fact columns; "
        f"row-store volume: {row_volume} column-page equivalents; "
        f"column merge-scan volume: {column_volume} "
        f"(saving {1 - column_volume / row_volume:.0%})"
    )
    # the merge scan should read roughly needed/arity of the volume
    assert column_volume < row_volume * (len(needed) / arity + 0.15)


def test_column_merge_scan_wall_time(benchmark):
    star, row_catalog, column_catalog, column_fact = _setup()
    generator = ssb_workload_generator(seed=6, catalog=row_catalog)
    queries = generator.generate(3, selectivity=0.1)
    needed = set()
    for query in queries:
        needed |= fact_columns_needed(query, star)

    def run():
        operator = ColumnStoreCJoinOperator(
            column_catalog, star, column_fact, scanned_columns=needed
        )
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()
        return handles

    handles = benchmark(run)
    assert all(handle.done for handle in handles)
