"""Burst recovery with the adaptive right-sizing controller.

The acceptance gate for the controller (DESIGN.md section 13,
EXPERIMENTS.md section 10): a warehouse deliberately configured tight
(admission bound 4) faces a Poisson arrival stream that runs low-rate,
jumps to 8x for a burst, and falls back.  Run once *static* (the tight
config, no controller) and once *adaptive* (same initial config plus
:class:`~repro.engine.autotune.AutoTuner` at a fast cadence), over the
same seeded arrival schedule.

``burst_recovery_ratio = p95(static) / p95(adaptive)`` is the
headline.  Note the direction: scripts/check_bench_regression.py
treats every tracked ratio as higher-is-better, so the ratio is
*static over adaptive* — 1.0 means the controller at least matched
the static config, above 1.0 it beat it by relieving the admission
bottleneck mid-burst.  The pytest gate requires the controller to
never be meaningfully worse (>= 0.8), a non-empty decision audit, a
visibly grown admission bound, and reference-equal results from the
warehouse that resized mid-run.

A second phase exercises the *worker pool* knob: a process-backend
warehouse with one worker accumulates a drain backlog, the controller
observes ``pending_process`` and grows the pool, and the drain at the
next boundary runs with the grown worker count — results again
reference-equal.

``--smoke`` runs a seconds-scale pass (burst -> decisions -> clean
stop) for the CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_burst_recovery.py --smoke
"""

from __future__ import annotations

import random
import sys
import threading
import time

from repro.engine import Warehouse
from repro.engine.autotune import AutoTuner, TuningPolicy
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.tuning import TuningConfig

ARRIVAL_SEED = 23
SCALE_FACTOR = 0.005
#: queries in the (low, burst, recovery) phases
PHASES = (8, 32, 8)
LOW_RATE_HZ = 8.0
BURST_RATIO = 8.0
#: the deliberately tight starting admission bound both runs share —
#: low enough that the 8x burst queues behind it, so the static run
#: pays admission waits the controller relieves by growing the bound
TIGHT_IN_FLIGHT = 2
RESULT_TIMEOUT = 120.0
#: the gate: the controller must not be meaningfully worse than static
REQUIRED_RATIO = 0.8

YEAR_WINDOWS = [
    (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
    (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
]


def burst_queries(phases: tuple[int, int, int] = PHASES) -> list[StarQuery]:
    """A deterministic grouped-star mix spanning all three phases."""
    queries = []
    for index in range(sum(phases)):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("count"),
                ],
                label=f"burst-{index}",
            )
        )
    return queries


def arrival_gaps(
    phases: tuple[int, int, int],
    low_rate_hz: float,
    burst_ratio: float,
    seed: int = ARRIVAL_SEED,
) -> list[float]:
    """One seeded low -> burst -> recovery inter-arrival schedule.

    Materialized once so the static and adaptive runs replay *exactly*
    the same arrival times — the runs differ only in the controller.
    """
    rng = random.Random(seed)
    gaps = []
    rates = (low_rate_hz, low_rate_hz * burst_ratio, low_rate_hz)
    for count, rate in zip(phases, rates):
        gaps.extend(rng.expovariate(rate) for _ in range(count))
    return gaps


def run_burst(
    queries: list[StarQuery],
    gaps: list[float],
    adaptive: bool,
    scale_factor: float = SCALE_FACTOR,
    controller_interval: float = 0.02,
    tight: int = TIGHT_IN_FLIGHT,
) -> dict:
    """One burst run; ``adaptive`` enables the controller.

    Returns the latency summary, collected rows, the final tuning, and
    the controller's decision audit (empty list for the static run).
    The controller policy floors the bound at its starting value, so
    the adaptive run can only relieve the burst, never under-cut the
    static config it is compared against.
    """
    warehouse = Warehouse.from_ssb(
        scale_factor=scale_factor,
        seed=31,
        execution="batched",
        tuning=TuningConfig(max_in_flight=tight),
    )
    threads_before = threading.active_count()
    service = warehouse.start_service()
    if adaptive:
        warehouse.enable_autotuning(
            policy=TuningPolicy(
                min_in_flight=tight,
                max_in_flight=64,
                cooldown_seconds=0.05,
                shrink_patience=8,
            ),
            interval=controller_interval,
        )
    try:
        handles = []
        for query, gap in zip(queries, gaps):
            time.sleep(gap)
            handles.append(warehouse.submit(query))
        results = [
            handle.results(timeout=RESULT_TIMEOUT) for handle in handles
        ]
    finally:
        decisions = [
            decision.as_dict()
            for decision in (
                warehouse.autotuner.decisions if warehouse.autotuner else []
            )
        ]
        final_tuning = warehouse.tuning
        warehouse.disable_autotuning()
        warehouse.stop_service()
    # the controller and driver threads must both be gone
    deadline = time.monotonic() + 5.0
    while (
        threading.active_count() > threads_before
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    return {
        "results": results,
        "summary": service.latency_summary(),
        "decisions": decisions,
        "final_max_in_flight": final_tuning.max_in_flight,
        "threads_clean": threading.active_count() <= threads_before,
    }


def resize_workers_mid_backlog(
    scale_factor: float = 0.002,
    backlog: int = 6,
    worker_cap: int = 4,
) -> dict:
    """The worker-pool knob: backlog -> controller grows -> drain.

    Submits ``backlog`` queries to a one-worker process-backend
    warehouse, ticks the controller until the grow_workers rule stops
    moving the pool, then drains and equivalence-checks the results
    against the reference evaluator.
    """
    warehouse = Warehouse.from_ssb(
        scale_factor=scale_factor,
        seed=31,
        backend="process",
        tuning=TuningConfig(workers=1, batch_size=1024),
    )
    tuner = AutoTuner(
        warehouse,
        policy=TuningPolicy(max_workers=worker_cap, cooldown_seconds=0.0),
        interval=0.01,
    )
    try:
        queries = burst_queries((backlog, 0, 0))
        handles = [warehouse.submit(query) for query in queries]
        workers_before = warehouse.executor_config.workers
        applied = []
        for _ in range(8):  # ticks, not time: deterministic growth
            decision = tuner.tick()
            if decision is not None and decision.applied:
                applied.append(decision.as_dict())
        workers_after = warehouse.executor_config.workers
        warehouse.run()
        results = [handle.results() for handle in handles]
        expected = [
            evaluate_star_query(query, warehouse.catalog)
            for query in queries
        ]
    finally:
        warehouse.close()
    return {
        "workers_before": workers_before,
        "workers_after": workers_after,
        "decisions": applied,
        "identical": results == expected,
    }


def measure_burst_recovery(
    scale_factor: float = SCALE_FACTOR,
    phases: tuple[int, int, int] = PHASES,
) -> dict:
    """Static-vs-adaptive burst comparison; the headline ratio.

    ``ratio`` is p95(static)/p95(adaptive) over the full run (the
    burst dominates the tail, so whole-run p95 is the burst story);
    ``identical`` covers both runs against the reference evaluator.
    """
    queries = burst_queries(phases)
    gaps = arrival_gaps(phases, LOW_RATE_HZ, BURST_RATIO)
    static = run_burst(queries, gaps, adaptive=False, scale_factor=scale_factor)
    adaptive = run_burst(queries, gaps, adaptive=True, scale_factor=scale_factor)
    reference = Warehouse.from_ssb(scale_factor=scale_factor, seed=31)
    expected = [
        evaluate_star_query(query, reference.catalog) for query in queries
    ]
    p95_static = static["summary"]["p95"]
    p95_adaptive = adaptive["summary"]["p95"]
    return {
        "static": static,
        "adaptive": adaptive,
        "ratio": p95_static / p95_adaptive if p95_adaptive > 0 else 0.0,
        "identical": (
            static["results"] == expected
            and adaptive["results"] == expected
        ),
        # the bound may shrink back during recovery, so "resized" means
        # some action was applied, not that the final value differs
        "resized": any(d["applied"] for d in adaptive["decisions"]),
    }


def _format_run(tag: str, run: dict) -> str:
    summary = run["summary"]
    applied = sum(1 for d in run["decisions"] if d["applied"])
    return (
        f"{tag}: p50 {summary['p50'] * 1e3:.1f} ms, "
        f"p95 {summary['p95'] * 1e3:.1f} ms, "
        f"wait p95 {summary['wait_p95'] * 1e3:.1f} ms, "
        f"final bound {run['final_max_in_flight']}, "
        f"{applied}/{len(run['decisions'])} decisions applied"
    )


def test_burst_recovery_adaptive_not_worse():
    """Mid-burst resizing must audit, grow, match results, not regress."""
    measured = measure_burst_recovery()
    print()
    print(_format_run("static  ", measured["static"]))
    print(_format_run("adaptive", measured["adaptive"]))
    print(f"burst_recovery_ratio p95(static)/p95(adaptive): "
          f"{measured['ratio']:.2f}")
    assert measured["identical"], "burst results diverged from reference"
    assert measured["adaptive"]["decisions"], "controller made no decisions"
    assert measured["resized"], "controller never moved the admission bound"
    assert measured["static"]["threads_clean"], "static run leaked threads"
    assert measured["adaptive"]["threads_clean"], "adaptive run leaked threads"
    assert measured["ratio"] >= REQUIRED_RATIO, (
        f"controller made the burst worse: ratio {measured['ratio']:.2f} "
        f"< {REQUIRED_RATIO}"
    )


def test_worker_pool_resizes_against_backlog():
    """The grow_workers rule visibly resizes the process pool."""
    measured = resize_workers_mid_backlog()
    print(
        f"\nworkers {measured['workers_before']} -> "
        f"{measured['workers_after']} across "
        f"{len(measured['decisions'])} applied decisions"
    )
    assert measured["identical"], "post-resize drain diverged from reference"
    assert measured["workers_after"] > measured["workers_before"]


def _smoke() -> int:
    """Seconds-scale CI pass: burst, decisions, resize, clean stop."""
    phases = (2, 8, 2)
    queries = burst_queries(phases)
    gaps = arrival_gaps(phases, low_rate_hz=32.0, burst_ratio=8.0)
    run = run_burst(
        queries, gaps, adaptive=True, scale_factor=0.001,
        controller_interval=0.01, tight=1,
    )
    reference = Warehouse.from_ssb(scale_factor=0.001, seed=31)
    expected = [
        evaluate_star_query(query, reference.catalog) for query in queries
    ]
    print(_format_run("smoke", run))
    if run["results"] != expected:
        print("FAIL: smoke results diverged from the reference evaluator")
        return 1
    if not run["decisions"]:
        print("FAIL: controller made no decisions under the smoke burst")
        return 1
    if not run["threads_clean"]:
        print("FAIL: smoke run leaked threads")
        return 1
    workers = resize_workers_mid_backlog(scale_factor=0.001, backlog=4)
    if not workers["identical"]:
        print("FAIL: worker-resize drain diverged from the reference")
        return 1
    if workers["workers_after"] <= workers["workers_before"]:
        print("FAIL: controller never grew the worker pool")
        return 1
    print(
        f"workers {workers['workers_before']} -> {workers['workers_after']}"
    )
    print("burst-recovery smoke ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv == ["--smoke"]:
        return _smoke()
    if argv:
        print(f"unknown arguments {argv}; expected --smoke or nothing")
        return 2
    measured = measure_burst_recovery()
    print(_format_run("static  ", measured["static"]))
    print(_format_run("adaptive", measured["adaptive"]))
    print(f"burst_recovery_ratio: {measured['ratio']:.2f}")
    print(f"identical to reference: {measured['identical']}")
    workers = resize_workers_mid_backlog()
    print(
        f"worker pool {workers['workers_before']} -> "
        f"{workers['workers_after']} (identical: {workers['identical']})"
    )
    return 0 if measured["identical"] and workers["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
