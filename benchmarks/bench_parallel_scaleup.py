"""Process-parallel sharded drain vs the serial batched drain.

The acceptance gate for the process backend (DESIGN.md section 8): on
a 4-core-or-better host, draining a distributor-heavy 24-query SSB
workload over 4 fact shards must be at least 2x faster wall-clock than
the serial batched drain, while producing identical results.  On hosts
with fewer than 4 CPUs the speedup test is *skipped* (the equivalence
tests in tests/test_parallel_equivalence.py still run everywhere).

The workload shape matters: shard parallelism amortizes scan and
distributor work, while the coordinator pays per-group merge costs.
The gate therefore uses group-light, survivor-heavy queries (GROUP BY
d_year — at most 7 groups — over wide year windows), the shape where
data parallelism should shine; see EXPERIMENTS.md for the record.

``measure_scaleup`` is also invoked by scripts/check_bench_regression.py
to compare the achieved speedup ratio against BENCH_baseline.json.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.cjoin import CJoinOperator, ExecutorConfig, execute_process_parallel
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.star import ColumnRef, StarQuery
from repro.ssb.generator import load_ssb
from repro.storage.buffer import BufferPool

WORKERS = 4
CONCURRENT_QUERIES = 24
SCALE_FACTOR = 0.02
BATCH_SIZE = 1024
TIMING_ROUNDS = 3
REQUIRED_SPEEDUP = 2.0

#: (first year, last year) windows cycled across the workload; wide
#: windows keep most fact tuples alive into the Distributor, which is
#: the work that shards actually parallelize.
YEAR_WINDOWS = [
    (1992, 1995), (1993, 1996), (1994, 1997), (1995, 1998),
    (1992, 1998), (1993, 1995), (1994, 1998), (1992, 1996),
]


def scaleup_workload(count: int = CONCURRENT_QUERIES) -> list[StarQuery]:
    """Group-light, survivor-heavy star queries over the date dimension."""
    queries = []
    for index in range(count):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("avg", "lineorder", "lo_quantity"),
                    AggregateSpec("min", "lineorder", "lo_extendedprice"),
                    AggregateSpec("max", "lineorder", "lo_extendedprice"),
                    AggregateSpec("count"),
                ],
                label=f"scaleup-{index}",
            )
        )
    return queries


def _serial_drain_seconds(catalog, star, queries):
    operator = CJoinOperator(
        catalog,
        star,
        buffer_pool=BufferPool(1024),
        executor_config=ExecutorConfig(
            execution="batched", batch_size=BATCH_SIZE
        ),
    )
    handles = [operator.submit(query) for query in queries]
    started = time.perf_counter()
    operator.run_until_drained()
    elapsed = time.perf_counter() - started
    return elapsed, [handle.results() for handle in handles]


def measure_scaleup(
    workers: int = WORKERS,
    scale_factor: float = SCALE_FACTOR,
    rounds: int = TIMING_ROUNDS,
) -> dict:
    """Best-of-``rounds`` serial vs parallel drain comparison.

    Returns a dict with ``serial_seconds``, ``parallel_seconds``,
    ``speedup``, ``workers``, and ``identical``.  The parallel timing
    covers the whole sharded drain — worker admission, shard scans,
    partial-state transfer, and the coordinator merge — while the
    serial timing starts post-admission (admission code is shared, and
    this matches bench_batch_vs_tuple's drain-only convention).
    """
    catalog, star = load_ssb(scale_factor=scale_factor, seed=31)
    queries = scaleup_workload()
    serial_best = float("inf")
    parallel_best = float("inf")
    serial_results = parallel_results = None
    for _ in range(rounds):
        elapsed, serial_results = _serial_drain_seconds(
            catalog, star, queries
        )
        serial_best = min(serial_best, elapsed)
        started = time.perf_counter()
        parallel_results = execute_process_parallel(
            catalog,
            star,
            queries,
            workers=workers,
            batch_size=BATCH_SIZE,
        )
        parallel_best = min(parallel_best, time.perf_counter() - started)
    return {
        "workers": workers,
        "serial_seconds": serial_best,
        "parallel_seconds": parallel_best,
        "speedup": serial_best / parallel_best,
        "identical": parallel_results == serial_results,
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"scale-up gate needs >= {WORKERS} CPUs",
)
def test_parallel_scaleup_at_4_workers():
    """4 shard workers drain >= 2x faster than the serial batched path."""
    measured = measure_scaleup()
    print(
        f"\n{CONCURRENT_QUERIES} queries, sf={SCALE_FACTOR}, "
        f"{measured['workers']} workers: serial "
        f"{measured['serial_seconds'] * 1e3:.0f} ms, parallel "
        f"{measured['parallel_seconds'] * 1e3:.0f} ms, speedup "
        f"{measured['speedup']:.2f}x"
    )
    assert measured["identical"]
    assert measured["speedup"] >= REQUIRED_SPEEDUP, (
        f"parallel drain only {measured['speedup']:.2f}x faster "
        f"(serial {measured['serial_seconds']:.3f}s vs parallel "
        f"{measured['parallel_seconds']:.3f}s)"
    )


def test_scaleup_workload_results_identical_everywhere():
    """The gate's workload itself is equivalence-checked on any host.

    Runs a miniature instance (so 1-core CI containers stay fast) —
    the timing assertion above is the only part that needs real cores.
    """
    catalog, star = load_ssb(scale_factor=0.002, seed=31)
    queries = scaleup_workload(6)
    _, serial_results = _serial_drain_seconds(catalog, star, queries)
    parallel_results = execute_process_parallel(
        catalog, star, queries, workers=WORKERS, batch_size=BATCH_SIZE
    )
    assert parallel_results == serial_results
