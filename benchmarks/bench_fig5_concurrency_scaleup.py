"""Figure 5 — query throughput scale-up with the number of queries.

Paper section 6.2.2: sf=100, s=1%, n swept 1..256.  Expected shape:
CJOIN scales linearly to n=128 and sub-linearly to 256, beating both
comparators from n=32 on and by an order of magnitude at n=256, while
System X and PostgreSQL peak around n=32 and then *decline*.
"""

from benchmarks.conftest import run_and_verify


def test_fig5_throughput_scaleup(benchmark):
    run_and_verify(benchmark, "fig5")
