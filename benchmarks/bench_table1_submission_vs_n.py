"""Table 1 — influence of concurrency on query submission time.

Paper section 6.2.2: submission time is ~2.4s regardless of n (32..
256) and negligible against the ~700-860s response times.  The bench
also verifies the *real* admission path scales the same way: measured
wall-clock admission into a live operator must not grow with the
number of already-registered queries.
"""

from benchmarks.conftest import run_and_verify
from repro.cjoin import CJoinOperator
from repro.ssb.queries import ssb_workload_generator


def test_table1_submission_time_vs_concurrency(benchmark):
    run_and_verify(benchmark, "tab1")


def test_real_admission_time_independent_of_registered_queries(ssb_bench):
    """Wall-clock admission on the real pipeline: first vs 40th query."""
    catalog, star = ssb_bench
    generator = ssb_workload_generator(seed=9, catalog=catalog)
    operator = CJoinOperator(catalog, star, max_concurrent=64)
    for query in generator.generate(40, selectivity=0.05):
        operator.submit(query)
    timings = operator.manager.timings.submission_seconds
    early = sum(timings[:5]) / 5
    late = sum(timings[-5:]) / 5
    # generous bound: admission must not blow up with registered count
    assert late < max(early * 5, early + 0.05)
