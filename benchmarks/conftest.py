"""Shared benchmark fixtures and reporting helpers.

Every figure/table bench runs its experiment through pytest-benchmark
(so regeneration cost is tracked), prints the paper-vs-measured series
to stdout (run pytest with ``-s`` to see them), and asserts the shape
checks from :mod:`repro.bench.experiments`.
"""

from __future__ import annotations

import pytest

from repro.bench import format_comparison, run_experiment
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator


def run_and_verify(benchmark, experiment_id: str):
    """Benchmark one experiment runner, print and assert its shapes."""
    result = benchmark(run_experiment, experiment_id)
    print()
    print(format_comparison(result))
    failed = [d for d, passed in result.checks if not passed]
    assert not failed, f"{experiment_id} shape checks failed: {failed}"
    return result


@pytest.fixture(scope="session")
def ssb_bench():
    """A milli-scale SSB instance for real-execution micro benches."""
    return load_ssb(scale_factor=0.0005, seed=23)


@pytest.fixture(scope="session")
def bench_workload(ssb_bench):
    catalog, _ = ssb_bench
    generator = ssb_workload_generator(seed=4, catalog=catalog)
    return generator.generate(8, selectivity=0.1)
