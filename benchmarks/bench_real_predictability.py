"""Real-execution predictability: the paper's headline shape, no models.

Wall-clock batch completion time for n concurrent queries on a
milli-scale SSB instance, both engines on identical storage.  Pure
Python, pure measurement:

* CJOIN's time for the whole batch grows mildly with n (one shared
  scan; extra work is per-tuple bit-vector width and distributor
  routing) — the paper's "going from 1 to 256 queries grows response
  < 30%" in miniature;
* the query-at-a-time baseline grows ~linearly with n (n private
  scans + n hash-table builds) — the paper's degradation;
* the curves CROSS: the baseline wins a single-query race (CJOIN pays
  its always-on pipeline overhead), CJOIN wins decisively once
  concurrency is real.  This mirrors Figure 8's sf=1 crossover shape.
"""

import time

from repro.baseline import QueryAtATimeEngine
from repro.cjoin import CJoinOperator
from repro.ssb.generator import load_ssb
from repro.ssb.queries import ssb_workload_generator
from repro.storage.buffer import BufferPool

CONCURRENCY_SWEEP = (1, 4, 16, 32)


def _measure(catalog, star, queries):
    started = time.perf_counter()
    operator = CJoinOperator(catalog, star)
    handles = [operator.submit(query) for query in queries]
    operator.run_until_drained()
    cjoin_seconds = time.perf_counter() - started
    assert all(handle.done for handle in handles)

    started = time.perf_counter()
    engine = QueryAtATimeEngine(catalog, star, BufferPool(1024))
    engine.execute_concurrent(queries, max_in_flight=len(queries))
    baseline_seconds = time.perf_counter() - started
    return cjoin_seconds, baseline_seconds


def test_real_wall_clock_predictability_crossover():
    catalog, star = load_ssb(scale_factor=0.002, seed=3)
    generator = ssb_workload_generator(seed=12, catalog=catalog)
    cjoin_times = {}
    baseline_times = {}
    print("\n   n   cjoin(ms)  baseline(ms)")
    for n in CONCURRENCY_SWEEP:
        queries = generator.generate(n, selectivity=0.1)
        cjoin_times[n], baseline_times[n] = _measure(catalog, star, queries)
        print(
            f"  {n:>2}   {cjoin_times[n] * 1000:8.0f}  "
            f"{baseline_times[n] * 1000:12.0f}"
        )
    top = CONCURRENCY_SWEEP[-1]
    cjoin_growth = cjoin_times[top] / cjoin_times[1]
    baseline_growth = baseline_times[top] / baseline_times[1]
    print(
        f"  growth 1->{top}: cjoin {cjoin_growth:.1f}x, "
        f"baseline {baseline_growth:.1f}x"
    )
    # predictability: CJOIN grows far less than the baseline and far
    # less than linearly; generous bounds for CI timing noise
    assert cjoin_growth < top / 4
    assert baseline_growth > cjoin_growth * 2
    # the crossover: baseline wins alone, CJOIN wins under concurrency
    assert baseline_times[1] < cjoin_times[1]
    assert cjoin_times[top] < baseline_times[top]


def test_cjoin_batch_scaling_wall_time(benchmark):
    catalog, star = load_ssb(scale_factor=0.002, seed=3)
    generator = ssb_workload_generator(seed=12, catalog=catalog)
    queries = generator.generate(16, selectivity=0.1)

    def run():
        operator = CJoinOperator(catalog, star)
        handles = [operator.submit(query) for query in queries]
        operator.run_until_drained()
        return handles

    handles = benchmark(run)
    assert all(handle.done for handle in handles)
