"""Remote concurrency: N socket clients vs in-process (EXPERIMENTS.md section 8).

The TCP service boundary (DESIGN.md section 11) is only worth its
round trips if many independent clients actually share the continuous
scan.  This benchmark drives the same query mix two ways over
identically configured warehouses:

* **remote** — one `WarehouseServer`, N concurrent socket clients
  (each its own `repro.connect("tcp://...")` session and thread)
  executing and fetching over the docs/PROTOCOL.md wire protocol;
* **in-process** — the same N threads sharing one in-process
  `repro.connect(warehouse)` session over a live service.

Gates: every row set (both passes) equals the reference evaluator's,
every client completes, and no threads leak after `server.stop()`.
The wire-overhead ratio (remote wall / in-process wall) is reported
for eyeballing, never asserted — EXPERIMENTS.md section 1's policy.

Knobs::

    PYTHONPATH=src python benchmarks/bench_remote_concurrency.py \
        [--clients N] [--queries-per-client M] [--smoke]
"""

from __future__ import annotations

import argparse
import threading
import time

import repro
from repro.engine import Warehouse
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.server import WarehouseServer
from repro.sql.render import render_star_query

SCALE_FACTOR = 0.002
DEFAULT_CLIENTS = 8
DEFAULT_QUERIES_PER_CLIENT = 4
RESULT_TIMEOUT = 120.0

YEAR_WINDOWS = [
    (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
    (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
]


def workload(count: int) -> list[StarQuery]:
    """Deterministic grouped star queries (the open-loop mix)."""
    queries = []
    for index in range(count):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("count"),
                ],
                label=f"remote-bench-{index}",
            )
        )
    return queries


def _run_clients(count, sqls_per_client, make_connection):
    """Fan N clients out on threads; returns (rows, latencies, wall)."""
    rows: dict[int, list[list[tuple]]] = {}
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        try:
            with make_connection() as connection:
                collected = []
                for sql in sqls_per_client[index]:
                    started = time.perf_counter()
                    result = connection.execute(sql).fetchall()
                    elapsed = time.perf_counter() - started
                    collected.append(result)
                    with lock:
                        latencies.append(elapsed)
                rows[index] = collected
        except BaseException as error:
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(count)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(RESULT_TIMEOUT)
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return rows, latencies, wall


def measure_remote_concurrency(
    clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES_PER_CLIENT,
    scale_factor: float = SCALE_FACTOR,
) -> dict:
    """One measured pass of both transports; returns rows and gates."""
    queries = workload(clients * queries_per_client)
    per_client = [
        queries[index * queries_per_client:(index + 1) * queries_per_client]
        for index in range(clients)
    ]

    def build() -> Warehouse:
        return Warehouse.from_ssb(
            scale_factor=scale_factor, seed=31, execution="batched"
        )

    reference_warehouse = build()
    star = reference_warehouse.star
    expected = {
        query.label: evaluate_star_query(query, reference_warehouse.catalog)
        for query in queries
    }
    sqls_per_client = [
        [render_star_query(query, star) for query in chunk]
        for chunk in per_client
    ]
    reference_warehouse.close()

    threads_before = set(threading.enumerate())

    # -- remote: one server, N socket clients -------------------------
    server = WarehouseServer(build(), owns_warehouse=True)
    server.start()
    try:
        remote_rows, remote_latencies, remote_wall = _run_clients(
            clients,
            sqls_per_client,
            lambda: repro.connect(server.url, fetch_timeout=RESULT_TIMEOUT),
        )
    finally:
        server.stop()
    threads_clean = set(threading.enumerate()) == threads_before

    # -- in-process: same threads over one shared session --------------
    local_warehouse = build()
    with repro.connect(
        local_warehouse, fetch_timeout=RESULT_TIMEOUT
    ) as connection:

        class _SharedSession:
            """Per-thread view of the one shared connection."""

            def __enter__(self):
                return connection

            def __exit__(self, *exc_info):
                pass  # the outer with owns the session

        local_rows, local_latencies, local_wall = _run_clients(
            clients, sqls_per_client, _SharedSession
        )
    local_warehouse.close()

    def matches(rows: dict[int, list[list[tuple]]]) -> bool:
        return all(
            rows[index]
            == [expected[query.label] for query in per_client[index]]
            for index in range(clients)
        )

    def percentile(values: list[float], fraction: float) -> float:
        from repro.cjoin.stats import percentile as pct

        return pct(values, fraction)

    return {
        "clients": clients,
        "queries": len(queries),
        "remote_ok": matches(remote_rows),
        "inprocess_ok": matches(local_rows),
        "threads_clean": threads_clean,
        "remote_wall": remote_wall,
        "inprocess_wall": local_wall,
        "wire_overhead": remote_wall / local_wall if local_wall else 0.0,
        "remote_p95": percentile(remote_latencies, 0.95),
        "inprocess_p95": percentile(local_latencies, 0.95),
    }


def _report(measured: dict) -> str:
    return (
        f"remote concurrency: {measured['clients']} clients x "
        f"{measured['queries'] // measured['clients']} queries; "
        f"remote wall {measured['remote_wall']:.2f}s "
        f"(p95 {measured['remote_p95'] * 1e3:.1f} ms) vs in-process "
        f"{measured['inprocess_wall']:.2f}s "
        f"(p95 {measured['inprocess_p95'] * 1e3:.1f} ms); "
        f"wire overhead x{measured['wire_overhead']:.2f}; "
        f"remote ok: {measured['remote_ok']}, in-process ok: "
        f"{measured['inprocess_ok']}, threads clean: "
        f"{measured['threads_clean']}"
    )


def _gates_pass(measured: dict) -> bool:
    return (
        measured["remote_ok"]
        and measured["inprocess_ok"]
        and measured["threads_clean"]
    )


def test_remote_clients_match_in_process():
    """N socket clients produce reference-equal rows, leak nothing."""
    measured = measure_remote_concurrency(
        clients=4, queries_per_client=2, scale_factor=0.001
    )
    print()
    print(_report(measured))
    assert measured["remote_ok"], "remote rows diverged from reference"
    assert measured["inprocess_ok"], "in-process rows diverged"
    assert measured["threads_clean"], "server left threads behind"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument(
        "--queries-per-client",
        type=int,
        default=DEFAULT_QUERIES_PER_CLIENT,
    )
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)
    if args.smoke:
        measured = measure_remote_concurrency(
            clients=4, queries_per_client=2, scale_factor=0.001
        )
    else:
        measured = measure_remote_concurrency(
            clients=args.clients,
            queries_per_client=args.queries_per_client,
        )
    print(_report(measured))
    ok = _gates_pass(measured)
    print("remote concurrency bench ok" if ok else
          "remote concurrency bench FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
