"""Remote concurrency: N socket clients vs in-process (EXPERIMENTS.md
sections 8 and 9).

The TCP service boundary (DESIGN.md section 11) is only worth its
round trips if many independent clients actually share the continuous
scan.  This benchmark drives the same query mix two ways over
identically configured warehouses:

* **remote** — one warehouse server (threaded or asyncio, selected
  with ``--transport``), N concurrent socket clients (each its own
  `repro.connect("tcp://...")` session and thread) executing and
  fetching over the docs/PROTOCOL.md wire protocol;
* **in-process** — the same N threads sharing one in-process
  `repro.connect(warehouse)` session over a live service.

Gates: every row set (both passes) equals the reference evaluator's,
every client completes, and no threads leak after `server.stop()`.
The wire-overhead ratio (remote wall / in-process wall) is reported
for eyeballing, never asserted — EXPERIMENTS.md section 1's policy.

``--transport async`` additionally runs the ISSUE 6 open-loop
session-scaling pass (EXPERIMENTS.md section 9): one process drives
1000+ concurrent remote sessions — protocol-v2 statements multiplexed
over a small async connection pool against the asyncio server — at a
fixed arrival rate, at a low rung and a high rung, and reports the
connections-vs-p95 flatness ratio ``p95(low) / p95(high)`` (1.0 =
session count does not move tail latency; gated via
BENCH_baseline.json ``async_session_flatness``).

Knobs::

    PYTHONPATH=src python benchmarks/bench_remote_concurrency.py \
        [--clients N] [--queries-per-client M] [--smoke] \
        [--transport threaded|async] [--sessions N] [--sessions-low N]
"""

from __future__ import annotations

import argparse
import asyncio
import threading
import time

import repro
from repro.engine import Warehouse
from repro.query.aggregates import AggregateSpec
from repro.query.predicate import Between
from repro.query.reference import evaluate_star_query
from repro.query.star import ColumnRef, StarQuery
from repro.server import AsyncWarehouseServer, WarehouseServer
from repro.sql.render import render_star_query

SCALE_FACTOR = 0.002
DEFAULT_CLIENTS = 8
DEFAULT_QUERIES_PER_CLIENT = 4
RESULT_TIMEOUT = 120.0

SERVER_CLASSES = {"threaded": WarehouseServer, "async": AsyncWarehouseServer}

#: open-loop session-scaling rungs (EXPERIMENTS.md section 9)
DEFAULT_SESSIONS = 1024
DEFAULT_SESSIONS_LOW = 64
#: fixed arrival spacing: open-loop means the clock, not completions,
#: schedules session starts — identical at both rungs
SESSION_SPACING_SECONDS = 0.002
SESSION_POOL_SIZE = 4
#: fresh statements probed while every session at the rung stays open
DEFAULT_PROBES = 32

YEAR_WINDOWS = [
    (1992, 1998), (1993, 1995), (1994, 1997), (1992, 1994),
    (1995, 1998), (1993, 1997), (1992, 1996), (1996, 1998),
]


def workload(count: int) -> list[StarQuery]:
    """Deterministic grouped star queries (the open-loop mix)."""
    queries = []
    for index in range(count):
        first, last = YEAR_WINDOWS[index % len(YEAR_WINDOWS)]
        queries.append(
            StarQuery.build(
                "lineorder",
                dimension_predicates={"date": Between("d_year", first, last)},
                group_by=[ColumnRef("date", "d_year")],
                aggregates=[
                    AggregateSpec("sum", "lineorder", "lo_revenue"),
                    AggregateSpec("count"),
                ],
                label=f"remote-bench-{index}",
            )
        )
    return queries


def _run_clients(count, sqls_per_client, make_connection):
    """Fan N clients out on threads; returns (rows, latencies, wall)."""
    rows: dict[int, list[list[tuple]]] = {}
    latencies: list[float] = []
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        try:
            with make_connection() as connection:
                collected = []
                for sql in sqls_per_client[index]:
                    started = time.perf_counter()
                    result = connection.execute(sql).fetchall()
                    elapsed = time.perf_counter() - started
                    collected.append(result)
                    with lock:
                        latencies.append(elapsed)
                rows[index] = collected
        except BaseException as error:
            with lock:
                errors.append(error)

    threads = [
        threading.Thread(target=client, args=(index,))
        for index in range(count)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(RESULT_TIMEOUT)
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return rows, latencies, wall


def measure_remote_concurrency(
    clients: int = DEFAULT_CLIENTS,
    queries_per_client: int = DEFAULT_QUERIES_PER_CLIENT,
    scale_factor: float = SCALE_FACTOR,
    server_class: type = WarehouseServer,
) -> dict:
    """One measured pass of both transports; returns rows and gates."""
    queries = workload(clients * queries_per_client)
    per_client = [
        queries[index * queries_per_client:(index + 1) * queries_per_client]
        for index in range(clients)
    ]

    def build() -> Warehouse:
        return Warehouse.from_ssb(
            scale_factor=scale_factor, seed=31, execution="batched"
        )

    reference_warehouse = build()
    star = reference_warehouse.star
    expected = {
        query.label: evaluate_star_query(query, reference_warehouse.catalog)
        for query in queries
    }
    sqls_per_client = [
        [render_star_query(query, star) for query in chunk]
        for chunk in per_client
    ]
    reference_warehouse.close()

    threads_before = set(threading.enumerate())

    # -- remote: one server, N socket clients -------------------------
    server = server_class(build(), owns_warehouse=True)
    server.start()
    try:
        remote_rows, remote_latencies, remote_wall = _run_clients(
            clients,
            sqls_per_client,
            lambda: repro.connect(server.url, fetch_timeout=RESULT_TIMEOUT),
        )
    finally:
        server.stop()
    threads_clean = set(threading.enumerate()) == threads_before

    # -- in-process: same threads over one shared session --------------
    local_warehouse = build()
    with repro.connect(
        local_warehouse, fetch_timeout=RESULT_TIMEOUT
    ) as connection:

        class _SharedSession:
            """Per-thread view of the one shared connection."""

            def __enter__(self):
                return connection

            def __exit__(self, *exc_info):
                pass  # the outer with owns the session

        local_rows, local_latencies, local_wall = _run_clients(
            clients, sqls_per_client, _SharedSession
        )
    local_warehouse.close()

    def matches(rows: dict[int, list[list[tuple]]]) -> bool:
        return all(
            rows[index]
            == [expected[query.label] for query in per_client[index]]
            for index in range(clients)
        )

    def percentile(values: list[float], fraction: float) -> float:
        from repro.cjoin.stats import percentile as pct

        return pct(values, fraction)

    return {
        "transport": [
            name for name, cls in SERVER_CLASSES.items()
            if cls is server_class
        ][0],
        "clients": clients,
        "queries": len(queries),
        "remote_ok": matches(remote_rows),
        "inprocess_ok": matches(local_rows),
        "threads_clean": threads_clean,
        "remote_wall": remote_wall,
        "inprocess_wall": local_wall,
        "wire_overhead": remote_wall / local_wall if local_wall else 0.0,
        "remote_p95": percentile(remote_latencies, 0.95),
        "inprocess_p95": percentile(local_latencies, 0.95),
    }


# ----------------------------------------------------------------------
# Open-loop session scaling over the async server (EXPERIMENTS.md
# section 9): p95 as a function of concurrent multiplexed sessions.
# ----------------------------------------------------------------------
async def _run_session_rung(
    url: str,
    sqls: list[str],
    expected: list[list[tuple]],
    sessions: int,
    pool_size: int,
    probes: int,
) -> dict:
    """One rung: N open-loop sessions held concurrently over a pool.

    Every session executes one statement, fetches its rows, verifies
    them, then HOLDS its cursor open — so the server demonstrably
    sustains N simultaneous query states multiplexed over
    ``pool_size`` sockets.  Once all N are open, a probe phase runs
    ``probes`` fresh statements and records THEIR latencies: the
    gated question is whether tail latency of live work depends on
    how many sessions the server is holding, not how fast one CPU
    can aggregate N concurrent ramp queries.
    """
    pool = await repro.connect_async(
        url, pool_size=pool_size, fetch_timeout=RESULT_TIMEOUT
    )
    ramp_latencies: list[float] = []
    probe_latencies: list[float] = []
    mismatches = 0
    open_sessions = 0
    peak = 0
    all_fetched = asyncio.Event()
    release = asyncio.Event()
    remaining = sessions

    async def session(index: int) -> None:
        nonlocal open_sessions, peak, remaining, mismatches
        # open-loop arrival: the clock schedules the start, not the
        # completion of any earlier session
        await asyncio.sleep(index * SESSION_SPACING_SECONDS)
        cursor = pool.cursor()
        open_sessions += 1
        peak = max(peak, open_sessions)
        started = time.perf_counter()
        await cursor.execute(sqls[index % len(sqls)])
        rows = await cursor.fetchall()
        ramp_latencies.append(time.perf_counter() - started)
        if rows != expected[index % len(sqls)]:
            mismatches += 1
        remaining -= 1
        if remaining == 0:
            all_fetched.set()
        await release.wait()  # hold the session open through probing
        await cursor.close()
        open_sessions -= 1

    tasks = [
        asyncio.create_task(session(index)) for index in range(sessions)
    ]
    try:
        await all_fetched.wait()
        # probe phase: every held session is still open server-side
        for index in range(probes):
            await asyncio.sleep(SESSION_SPACING_SECONDS)
            cursor = pool.cursor()
            started = time.perf_counter()
            await cursor.execute(sqls[index % len(sqls)])
            rows = await cursor.fetchall()
            probe_latencies.append(time.perf_counter() - started)
            if rows != expected[index % len(sqls)]:
                mismatches += 1
            await cursor.close()
    finally:
        release.set()
        await asyncio.gather(*tasks, return_exceptions=True)
        await pool.close()
    return {
        "ramp_latencies": ramp_latencies,
        "probe_latencies": probe_latencies,
        "peak_sessions": peak,
        "rows_ok": mismatches == 0,
    }


def measure_async_sessions(
    sessions: int = DEFAULT_SESSIONS,
    sessions_low: int = DEFAULT_SESSIONS_LOW,
    scale_factor: float = 0.001,
    pool_size: int = SESSION_POOL_SIZE,
    probes: int = DEFAULT_PROBES,
) -> dict:
    """Probe p95 at a low and a high concurrent-session rung.

    Flatness = ``probe p95(low rung) / probe p95(high rung)`` — 1.0
    means holding 16x more concurrent sessions does not move the tail
    latency of live statements, the serving-layer analogue of the
    paper's predictability claim.
    """
    queries = workload(len(YEAR_WINDOWS))
    warehouse = Warehouse.from_ssb(
        scale_factor=scale_factor,
        seed=31,
        execution="batched",
        max_concurrent=max(sessions, 256),
        admission_queue_depth=max(2 * sessions, 1024),
    )
    star = warehouse.star
    sqls = [render_star_query(query, star) for query in queries]
    expected = [
        evaluate_star_query(query, warehouse.catalog) for query in queries
    ]

    threads_before = set(threading.enumerate())
    server = AsyncWarehouseServer(
        warehouse,
        owns_warehouse=True,
        max_in_flight_per_connection=max(sessions, 16),
        max_pending_fetches=max(sessions, 1024),
    ).start()
    try:
        rungs = {}
        for rung in (sessions_low, sessions):
            observed = asyncio.run(
                _run_session_rung(
                    server.url, sqls, expected, rung, pool_size, probes
                )
            )
            rungs[rung] = {
                "probe_p95": _percentile(
                    observed["probe_latencies"], 0.95
                ),
                "ramp_p95": _percentile(
                    observed["ramp_latencies"], 0.95
                ),
                "peak_sessions": observed["peak_sessions"],
                "rows_ok": observed["rows_ok"],
            }
    finally:
        server.stop()
    # the ledger is final once stop() joined the loop thread
    leaked = list(server.leaked_tasks)
    threads_clean = set(threading.enumerate()) == threads_before

    low, high = rungs[sessions_low], rungs[sessions]
    return {
        "sessions_low": sessions_low,
        "sessions": sessions,
        "pool_size": pool_size,
        "probes": probes,
        "p95_low": low["probe_p95"],
        "p95_high": high["probe_p95"],
        "ramp_p95_low": low["ramp_p95"],
        "ramp_p95_high": high["ramp_p95"],
        "flatness": (
            low["probe_p95"] / high["probe_p95"]
            if high["probe_p95"]
            else 0.0
        ),
        "peak_sessions": high["peak_sessions"],
        "sustained_target": high["peak_sessions"] >= sessions,
        "rows_ok": low["rows_ok"] and high["rows_ok"],
        "tasks_clean": leaked == [],
        "threads_clean": threads_clean,
    }


def _percentile(values: list[float], fraction: float) -> float:
    from repro.cjoin.stats import percentile

    return percentile(values, fraction)


def _session_report(measured: dict) -> str:
    return (
        f"async sessions: probe p95 {measured['p95_low'] * 1e3:.1f} ms "
        f"@ {measured['sessions_low']} held sessions vs "
        f"{measured['p95_high'] * 1e3:.1f} ms @ {measured['sessions']} "
        f"held sessions over {measured['pool_size']} sockets; flatness "
        f"{measured['flatness']:.2f}; ramp p95 "
        f"{measured['ramp_p95_low'] * 1e3:.1f} / "
        f"{measured['ramp_p95_high'] * 1e3:.1f} ms; peak open "
        f"{measured['peak_sessions']}; rows ok: {measured['rows_ok']}, "
        f"tasks clean: {measured['tasks_clean']}, threads clean: "
        f"{measured['threads_clean']}"
    )


def _session_gates_pass(measured: dict) -> bool:
    return (
        measured["rows_ok"]
        and measured["sustained_target"]
        and measured["tasks_clean"]
        and measured["threads_clean"]
    )


def _report(measured: dict) -> str:
    return (
        f"remote concurrency ({measured['transport']}): "
        f"{measured['clients']} clients x "
        f"{measured['queries'] // measured['clients']} queries; "
        f"remote wall {measured['remote_wall']:.2f}s "
        f"(p95 {measured['remote_p95'] * 1e3:.1f} ms) vs in-process "
        f"{measured['inprocess_wall']:.2f}s "
        f"(p95 {measured['inprocess_p95'] * 1e3:.1f} ms); "
        f"wire overhead x{measured['wire_overhead']:.2f}; "
        f"remote ok: {measured['remote_ok']}, in-process ok: "
        f"{measured['inprocess_ok']}, threads clean: "
        f"{measured['threads_clean']}"
    )


def _gates_pass(measured: dict) -> bool:
    return (
        measured["remote_ok"]
        and measured["inprocess_ok"]
        and measured["threads_clean"]
    )


def test_remote_clients_match_in_process():
    """N socket clients produce reference-equal rows, leak nothing."""
    measured = measure_remote_concurrency(
        clients=4, queries_per_client=2, scale_factor=0.001
    )
    print()
    print(_report(measured))
    assert measured["remote_ok"], "remote rows diverged from reference"
    assert measured["inprocess_ok"], "in-process rows diverged"
    assert measured["threads_clean"], "server left threads behind"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument(
        "--queries-per-client",
        type=int,
        default=DEFAULT_QUERIES_PER_CLIENT,
    )
    parser.add_argument(
        "--transport",
        choices=sorted(SERVER_CLASSES),
        default="threaded",
    )
    parser.add_argument("--sessions", type=int, default=DEFAULT_SESSIONS)
    parser.add_argument(
        "--sessions-low", type=int, default=DEFAULT_SESSIONS_LOW
    )
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)
    server_class = SERVER_CLASSES[args.transport]
    if args.smoke:
        measured = measure_remote_concurrency(
            clients=4,
            queries_per_client=2,
            scale_factor=0.001,
            server_class=server_class,
        )
    else:
        measured = measure_remote_concurrency(
            clients=args.clients,
            queries_per_client=args.queries_per_client,
            server_class=server_class,
        )
    print(_report(measured))
    ok = _gates_pass(measured)
    if args.transport == "async":
        # the session-scaling pass (EXPERIMENTS.md section 9); smoke
        # keeps CI fast with scaled-down rungs over the same code path
        sessions = 128 if args.smoke else args.sessions
        sessions_low = 32 if args.smoke else args.sessions_low
        scaled = measure_async_sessions(
            sessions=sessions, sessions_low=sessions_low
        )
        print(_session_report(scaled))
        ok = ok and _session_gates_pass(scaled)
    print("remote concurrency bench ok" if ok else
          "remote concurrency bench FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
