#!/usr/bin/env python3
"""Fail when the exported public API drifts from its snapshot.

The client layer (DESIGN.md section 10) and the TCP service boundary
(DESIGN.md section 11) make ``repro``, ``repro.client``, and
``repro.server`` a compatibility surface real code depends on.  This
script snapshots every ``__all__`` export of those modules — classes
with their public method/property signatures, functions with their
signatures — into ``scripts/api_surface.json`` and fails listing every
difference, so signature breakage is always a reviewed decision, never
an accident.  Wired into CI (the ``api-surface`` job) and the test
suite via tests/test_tooling.py; also runnable standalone::

    python scripts/check_public_api.py            # verify
    python scripts/check_public_api.py --update   # re-snapshot
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "scripts" / "api_surface.json"

#: The modules whose exported surface is under contract.
MODULES = ("repro", "repro.client", "repro.server")


def _describe_callable(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def _describe(obj) -> dict:
    """A JSON-able structural description of one export."""
    if inspect.isclass(obj):
        members: dict[str, str] = {}
        for name, member in inspect.getmembers(obj):
            if name.startswith("_") and name != "__init__":
                continue
            if inspect.isfunction(member) or inspect.ismethod(member):
                members[name] = _describe_callable(member)
            elif isinstance(member, property):
                members[name] = "<property>"
        return {"kind": "class", "members": members}
    if inspect.isfunction(obj):
        return {"kind": "function", "signature": _describe_callable(obj)}
    return {"kind": "constant", "type": type(obj).__name__}


def current_surface() -> dict:
    """Describe every ``__all__`` export of the contracted modules.

    A module may also declare ``__deprecated__``, a mapping of
    shimmed-out export names (served through a PEP 562 ``__getattr__``
    with a :class:`DeprecationWarning`) to their replacement.  Those
    names appear in the surface with ``kind: "deprecated"`` so the
    comparison can tell a symbol that *moved behind a shim* from one
    that silently vanished.
    """
    surface: dict[str, dict] = {}
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        exports = {}
        for export in sorted(module.__all__):
            exports[export] = _describe(getattr(module, export))
        for export, replacement in sorted(
            getattr(module, "__deprecated__", {}).items()
        ):
            if export not in exports:
                exports[export] = {
                    "kind": "deprecated",
                    "replacement": replacement,
                }
        surface[module_name] = exports
    return surface


def compare(
    snapshot: dict, observed: dict, notes: list[str] | None = None
) -> list[str]:
    """Human-readable differences (empty = surfaces match).

    A symbol that left ``__all__`` but is still served by a
    ``__deprecated__`` shim is not a breakage: it lands in ``notes``
    (when the caller passes a list) instead of the returned problems.
    """
    problems: list[str] = []
    for module_name in sorted(set(snapshot) | set(observed)):
        old = snapshot.get(module_name)
        new = observed.get(module_name)
        if old is None:
            problems.append(f"{module_name}: module not in snapshot")
            continue
        if new is None:
            problems.append(f"{module_name}: module no longer importable")
            continue
        for name in sorted(set(old) - set(new)):
            problems.append(f"{module_name}.{name}: removed from __all__")
        for name in sorted(set(new) - set(old)):
            problems.append(f"{module_name}.{name}: added to __all__")
        for name in sorted(set(old) & set(new)):
            before, after = old[name], new[name]
            if (
                after.get("kind") == "deprecated"
                and before.get("kind") != "deprecated"
            ):
                if notes is not None:
                    notes.append(
                        f"{module_name}.{name}: deprecated (use "
                        f"{after.get('replacement', 'its replacement')})"
                    )
                continue
            if before.get("kind") != after.get("kind"):
                problems.append(
                    f"{module_name}.{name}: kind changed "
                    f"{before.get('kind')} -> {after.get('kind')}"
                )
                continue
            if before.get("signature") != after.get("signature"):
                problems.append(
                    f"{module_name}.{name}: signature changed "
                    f"{before.get('signature')} -> {after.get('signature')}"
                )
            old_members = before.get("members", {})
            new_members = after.get("members", {})
            for member in sorted(set(old_members) - set(new_members)):
                problems.append(
                    f"{module_name}.{name}.{member}: member removed"
                )
            for member in sorted(set(new_members) - set(old_members)):
                problems.append(
                    f"{module_name}.{name}.{member}: member added"
                )
            for member in sorted(set(old_members) & set(new_members)):
                if old_members[member] != new_members[member]:
                    problems.append(
                        f"{module_name}.{name}.{member}: signature "
                        f"changed {old_members[member]} -> "
                        f"{new_members[member]}"
                    )
    return problems


def check(
    snapshot_path: Path = SNAPSHOT_PATH,
    notes: list[str] | None = None,
) -> list[str]:
    """Compare the live surface against the committed snapshot."""
    if not snapshot_path.is_file():
        return [
            f"snapshot {snapshot_path} is missing; run "
            f"'python scripts/check_public_api.py --update' and commit it"
        ]
    snapshot = json.loads(snapshot_path.read_text(encoding="utf-8"))
    return compare(snapshot, current_surface(), notes)


def update(snapshot_path: Path = SNAPSHOT_PATH) -> None:
    """Rewrite the snapshot from the live surface."""
    snapshot_path.write_text(
        json.dumps(current_surface(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite scripts/api_surface.json from the live surface",
    )
    args = parser.parse_args(argv)
    if args.update:
        update()
        print(f"snapshot written to {SNAPSHOT_PATH}")
        return 0
    notes: list[str] = []
    problems = check(notes=notes)
    for note in notes:
        print(f"note: {note}")
    if problems:
        print(f"{len(problems)} public API difference(s) vs snapshot:")
        for problem in problems:
            print(f"  {problem}")
        print(
            "intentional change? run "
            "'python scripts/check_public_api.py --update' and commit "
            "the snapshot diff"
        )
        return 1
    print("public API surface matches the snapshot")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
