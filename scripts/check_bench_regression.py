#!/usr/bin/env python3
"""Fail when a headline performance ratio regresses > 20% vs baseline.

Tracked ratios (ratios, not absolute seconds, so the gate is
meaningful across machines of different speeds):

* ``batch_vs_tuple_speedup`` — the PR-1 vectorized drain vs the
  reference tuple-at-a-time drain (benchmarks/bench_batch_vs_tuple.py);
* ``parallel_scaleup_speedup`` — the 4-worker process-parallel drain
  vs the serial batched drain (benchmarks/bench_parallel_scaleup.py);
  only measurable on hosts with >= 4 CPUs, skipped elsewhere;
* ``open_loop_flatness`` — p95 latency at a low Poisson arrival rate
  over p95 at 8x that rate against the always-on service
  (benchmarks/bench_open_loop_latency.py; 1.0 = perfectly flat, the
  paper's predictability claim);
* ``async_session_flatness`` — probe-statement p95 with 64 concurrent
  remote sessions held open over probe p95 with 1024 held, multiplexed
  over 4 sockets against the asyncio server
  (benchmarks/bench_remote_concurrency.py; 1.0 = session count does
  not move tail latency, the serving-layer predictability claim);
* ``burst_recovery_ratio`` — p95 under an 8x Poisson burst with a
  *static* tight admission bound over p95 with the adaptive
  right-sizing controller enabled
  (benchmarks/bench_burst_recovery.py).  Deliberately inverted —
  static over adaptive — so that, like every other tracked ratio,
  higher is better: 1.0 = the controller matched the static config,
  above 1.0 it relieved the burst;
* ``ingest_flatness`` — open-loop query p95 with no ingest over p95
  while a producer streams >= 2k appended fact rows per second
  through the bounded ingest buffer, applied at scan boundaries
  (benchmarks/bench_ingest_flatness.py; 1.0 = streaming writes are
  free, the streaming-ingest predictability claim);
* ``kernel_per_tuple_cost`` — drain cost per scanned tuple with the
  batch kernels off over the same cost with the default kernel
  (benchmarks/bench_kernel_cost.py; above 1.0 the kernels make every
  scanned tuple cheaper);
* ``shm_vs_pickle_transport`` — per-drain shard-handoff seconds of
  the pickle process transport over the warm shared-memory transport
  (same bench; above 1.0 shm hands workers their shards faster);
* ``restart_recovery`` — seconds to regenerate and load the SSB
  dataset from scratch over seconds for ``Warehouse.open`` on a
  durable data directory after a crash (decode columns + replay the
  WAL tail; benchmarks/bench_restart_recovery.py, DESIGN.md section
  16).  The bench also enforces the correctness half inline: every
  acked ingest row must survive the simulated power loss
  (``acked_survival == 1.0``) or measurement fails outright.

Each measured ratio is compared against BENCH_baseline.json at the
repository root; a measurement below ``baseline * (1 - tolerance)``
(default tolerance 20%) fails the check.  Wired into CI as a
non-blocking job (timing on shared runners is advisory); run it
locally before and after touching hot paths.

Updating the baseline (see EXPERIMENTS.md section 5): after an
intentional performance change, run on a quiet multi-core host::

    python scripts/check_bench_regression.py --update

review the diff to BENCH_baseline.json, and commit it together with
the change that moved the numbers.  ``--update`` only overwrites
metrics that are measurable on the current host, so a 2-core laptop
refreshing the batch ratio will not clobber the parallel one.  To
refresh a subset without re-measuring (or touching) the rest —
e.g. after a change that only moves the kernel ratio, or to protect
floor-seeded metrics — name the metrics to run::

    python scripts/check_bench_regression.py --update \\
        --only kernel_per_tuple_cost --only shm_vs_pickle_transport
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"

#: fraction of the baseline ratio a measurement may lose before the
#: gate fails (0.2 = fail below 80% of baseline)
DEFAULT_TOLERANCE = 0.2


def _ensure_import_paths() -> None:
    for path in (str(REPO_ROOT), str(REPO_ROOT / "src")):
        if path not in sys.path:
            sys.path.insert(0, path)


#: every metric measure_metrics() knows how to produce, in run order
TRACKED_METRICS = (
    "batch_vs_tuple_speedup",
    "parallel_scaleup_speedup",
    "open_loop_flatness",
    "async_session_flatness",
    "burst_recovery_ratio",
    "ingest_flatness",
    "kernel_per_tuple_cost",
    "shm_vs_pickle_transport",
    "restart_recovery",
)


def measure_metrics(
    only: tuple[str, ...] | None = None,
) -> dict[str, float | None]:
    """Run the tracked benchmarks; None marks unmeasurable-here metrics.

    ``only`` restricts both measurement and the returned dict to the
    named metrics — metrics left out are neither run nor reported, so
    ``--update --only ...`` cannot clobber them.
    """
    _ensure_import_paths()
    wanted = set(TRACKED_METRICS if only is None else only)
    metrics: dict[str, float | None] = {}
    if "batch_vs_tuple_speedup" in wanted:
        from benchmarks.bench_batch_vs_tuple import measure_batch_vs_tuple

        batch = measure_batch_vs_tuple()
        if not batch["identical"]:
            raise AssertionError("batched drain produced different results")
        metrics["batch_vs_tuple_speedup"] = round(batch["speedup"], 3)
    if "parallel_scaleup_speedup" in wanted:
        from benchmarks.bench_parallel_scaleup import WORKERS, measure_scaleup

        if (os.cpu_count() or 1) >= WORKERS:
            scaleup = measure_scaleup()
            if not scaleup["identical"]:
                raise AssertionError(
                    "parallel drain produced different results"
                )
            metrics["parallel_scaleup_speedup"] = round(
                scaleup["speedup"], 3
            )
        else:
            metrics["parallel_scaleup_speedup"] = None
    if "open_loop_flatness" in wanted:
        from benchmarks.bench_open_loop_latency import measure_open_loop

        open_loop = measure_open_loop()
        if not open_loop["identical"]:
            raise AssertionError(
                "open-loop service results diverged from reference"
            )
        metrics["open_loop_flatness"] = round(open_loop["flatness"], 3)
    if "async_session_flatness" in wanted:
        from benchmarks.bench_remote_concurrency import (
            measure_async_sessions,
        )

        async_sessions = measure_async_sessions()
        if not async_sessions["rows_ok"]:
            raise AssertionError("async session rows diverged from reference")
        if not async_sessions["sustained_target"]:
            raise AssertionError(
                "async server failed to hold the full session rung "
                f"({async_sessions['peak_sessions']} < "
                f"{async_sessions['sessions']})"
            )
        if not (
            async_sessions["tasks_clean"] and async_sessions["threads_clean"]
        ):
            raise AssertionError("async session bench leaked tasks or threads")
        metrics["async_session_flatness"] = round(
            async_sessions["flatness"], 3
        )
    if "burst_recovery_ratio" in wanted:
        from benchmarks.bench_burst_recovery import measure_burst_recovery

        burst = measure_burst_recovery()
        if not burst["identical"]:
            raise AssertionError(
                "burst-recovery results diverged from reference"
            )
        if not burst["resized"]:
            raise AssertionError(
                "adaptive controller applied no resize during the burst"
            )
        metrics["burst_recovery_ratio"] = round(burst["ratio"], 3)
    if "ingest_flatness" in wanted:
        from benchmarks.bench_ingest_flatness import measure_ingest_flatness

        ingest = measure_ingest_flatness()
        if not ingest["identical"]:
            raise AssertionError(
                "ingest-race results diverged from reference"
            )
        racing = ingest["racing"]
        if not racing["probe_saw_rows"]:
            raise AssertionError(
                "acked ingest rows were not visible to the probe"
            )
        if racing["rows_applied"] <= 0:
            raise AssertionError(
                "ingest producer applied no rows; the race never happened"
            )
        metrics["ingest_flatness"] = round(ingest["flatness"], 3)
    if "kernel_per_tuple_cost" in wanted:
        from benchmarks.bench_kernel_cost import measure_kernel_cost

        kernel = measure_kernel_cost()
        if not kernel["identical"]:
            raise AssertionError(
                "batch kernels produced different results than the loops"
            )
        metrics["kernel_per_tuple_cost"] = round(kernel["cost_ratio"], 3)
    if "shm_vs_pickle_transport" in wanted:
        from benchmarks.bench_kernel_cost import measure_shard_transport

        transport = measure_shard_transport()
        if not transport["identical"]:
            raise AssertionError(
                "shm shard slices diverged from the pickled shards"
            )
        metrics["shm_vs_pickle_transport"] = round(transport["speedup"], 3)
    if "restart_recovery" in wanted:
        from benchmarks.bench_restart_recovery import (
            measure_restart_recovery,
        )

        restart = measure_restart_recovery()
        if restart["acked_survival"] != 1.0 or not restart["identical"]:
            raise AssertionError(
                "acked ingest rows did not survive the simulated crash"
            )
        if not restart["generation_resumed"]:
            raise AssertionError(
                "the ingest generation did not resume past the last ack"
            )
        if restart["wal_records_replayed"] < 1:
            raise AssertionError(
                "the crash never exercised the WAL replay path"
            )
        metrics["restart_recovery"] = round(restart["speedup"], 3)
    return metrics


def check(
    measured: dict[str, float | None],
    baseline: dict,
    tolerance: float,
) -> list[str]:
    """Return failure messages (empty = all tracked ratios hold up)."""
    problems = []
    floor_seeded = set(baseline.get("floor_seeded", ()))
    for name, reference in baseline.get("metrics", {}).items():
        if name not in measured:
            print(f"{name}: skipped (not selected by --only)")
            continue
        value = measured[name]
        if reference is None:
            print(f"{name}: skipped (no committed baseline; see --update)")
            continue
        if value is None:
            print(f"{name}: skipped (not measurable on this host)")
            continue
        floor = reference * (1.0 - tolerance)
        status = "ok" if value >= floor else "REGRESSION"
        origin = (
            "acceptance floor, never measured here"
            if name in floor_seeded
            else "measured baseline"
        )
        print(
            f"{name}: measured {value:.2f}x vs baseline {reference:.2f}x "
            f"({origin}; floor {floor:.2f}x) -> {status}"
        )
        if value < floor:
            problems.append(
                f"{name} regressed: {value:.2f}x < {floor:.2f}x "
                f"(baseline {reference:.2f}x - {tolerance:.0%})"
            )
    return problems


def update_baseline(
    measured: dict[str, float | None],
    only: tuple[str, ...] | None = None,
) -> None:
    """Overwrite measurable metrics in BENCH_baseline.json.

    Metrics listed under the baseline's ``floor_seeded`` annotation
    hold an acceptance floor, not a measurement from a qualified host
    (e.g. a parallel ratio seeded on a single-CPU container).  A blanket
    ``--update`` leaves them alone; naming one via ``--only`` is the
    explicit promotion path — the floor is replaced by the measurement
    and the name drops off the annotation.
    """
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    floor_seeded = list(baseline.get("floor_seeded", ()))
    explicit = set(only or ())
    for name, value in measured.items():
        if value is None:
            continue
        if name in floor_seeded and name not in explicit:
            print(
                f"{name}: kept floor seed {baseline['metrics'][name]} "
                f"(measured {value}; promote with --only {name})"
            )
            continue
        baseline["metrics"][name] = value
        if name in floor_seeded:
            floor_seeded.remove(name)
    baseline["floor_seeded"] = floor_seeded
    BASELINE_PATH.write_text(
        json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
    )
    print(f"updated {BASELINE_PATH.name}: {baseline['metrics']}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="write measured ratios into BENCH_baseline.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional loss vs baseline (default 0.2)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=TRACKED_METRICS,
        metavar="METRIC",
        help="measure (and with --update, overwrite) only this metric; "
        "repeatable",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    measured = measure_metrics(tuple(args.only) if args.only else None)
    if args.update:
        update_baseline(
            measured, tuple(args.only) if args.only else None
        )
        return 0
    problems = check(measured, baseline, args.tolerance)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("benchmark ratios within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
