#!/usr/bin/env python3
"""Fail when src/ or docs/ cites a documentation file or section that is missing.

Module docstrings across ``src/`` cite ``DESIGN.md section N``,
``EXPERIMENTS.md``, ``README.md``, ``PAPER.md``, and the ``docs/``
tree (``docs/ARCHITECTURE.md``, ``docs/PROTOCOL.md``); the documents
under ``docs/`` cross-cite each other and the root documents.  Those
citations rot silently: nothing else checks that the file exists or
that the numbered section is still there.  This script greps every
``src/**/*.py`` and ``docs/**/*.md`` for doc citations, resolves each
against the repository (bare ``ARCHITECTURE.md`` / ``PROTOCOL.md``
names resolve into ``docs/``), and exits non-zero listing every
dangling reference.  Wired into the test suite via
tests/test_tooling.py and the CI ``docs-refs`` and ``server-smoke``
jobs; also runnable standalone::

    python scripts/check_docs_refs.py
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Documents living at the repository root.
ROOT_DOCS = ("DESIGN", "EXPERIMENTS", "README", "PAPER")

#: Documents living under docs/ (citable with or without the prefix).
TREE_DOCS = ("ARCHITECTURE", "PROTOCOL")

#: A recognized document name, optionally followed by "section N",
#: "sections N-M" or "sections N and M"
CITATION = re.compile(
    r"(?P<doc>(?:docs/)?(?:"
    + "|".join((*ROOT_DOCS, *TREE_DOCS))
    + r")\.md)"
    r"(?:,?\s+sections?\s+(?P<first>\d+)"
    r"(?:\s*(?:-|and)\s*(?P<last>\d+))?)?"
)

#: numbered markdown headings: "## 3. Storage substrate"
HEADING = re.compile(r"^#{1,6}\s+(\d+)[.)]\s", re.MULTILINE)


def doc_sections(doc_path: Path) -> set[int]:
    """The numbered section headings present in a markdown file."""
    return {
        int(match.group(1))
        for match in HEADING.finditer(doc_path.read_text(encoding="utf-8"))
    }


def resolve_doc(root: Path, name: str) -> Path:
    """Map a cited document name to its path in the repository."""
    bare = name.removeprefix("docs/").removesuffix(".md")
    if bare in TREE_DOCS:
        return root / "docs" / f"{bare}.md"
    return root / f"{bare}.md"


def _sources(root: Path) -> list[Path]:
    sources = sorted((root / "src").rglob("*.py"))
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        sources.extend(sorted(docs_dir.rglob("*.md")))
    return sources


def check(root: Path = REPO_ROOT) -> list[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems: list[str] = []
    sections_by_doc: dict[str, set[int] | None] = {}
    for source in _sources(root):
        text = source.read_text(encoding="utf-8")
        for match in CITATION.finditer(text):
            doc_name = match.group("doc")
            line = text.count("\n", 0, match.start()) + 1
            where = f"{source.relative_to(root)}:{line}"
            doc_path = resolve_doc(root, doc_name)
            key = str(doc_path)
            if key not in sections_by_doc:
                sections_by_doc[key] = (
                    doc_sections(doc_path) if doc_path.is_file() else None
                )
            sections = sections_by_doc[key]
            if sections is None:
                problems.append(f"{where}: cites missing file {doc_name}")
                continue
            if match.group("first") is None:
                continue
            first = int(match.group("first"))
            last = int(match.group("last") or first)
            for number in range(first, last + 1):
                if number not in sections:
                    problems.append(
                        f"{where}: cites {doc_name} section {number}, "
                        f"which has no such numbered heading "
                        f"(found: {sorted(sections)})"
                    )
    return problems


def main() -> int:
    problems = check()
    if problems:
        print(f"{len(problems)} dangling documentation reference(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("all documentation citations in src/ and docs/ resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
