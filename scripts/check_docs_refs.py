#!/usr/bin/env python3
"""Fail when src/ cites a documentation file or section that is missing.

Module docstrings across ``src/`` cite ``DESIGN.md section N``,
``EXPERIMENTS.md`` and ``README.md``.  Those citations rot silently:
nothing else checks that the file exists or that the numbered section
is still there.  This script greps every ``src/**/*.py`` for doc
citations, resolves each against the repository root, and exits
non-zero listing every dangling reference.  Wired into the test suite
via tests/test_tooling.py; also runnable standalone::

    python scripts/check_docs_refs.py
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: DESIGN.md / EXPERIMENTS.md / README.md, optionally followed by
#: "section N", "sections N-M" or "sections N and M"
CITATION = re.compile(
    r"(?P<doc>DESIGN|EXPERIMENTS|README)\.md"
    r"(?:,?\s+sections?\s+(?P<first>\d+)"
    r"(?:\s*(?:-|and)\s*(?P<last>\d+))?)?"
)

#: numbered markdown headings: "## 3. Storage substrate"
HEADING = re.compile(r"^#{1,6}\s+(\d+)[.)]\s", re.MULTILINE)


def doc_sections(doc_path: Path) -> set[int]:
    """The numbered section headings present in a markdown file."""
    return {
        int(match.group(1))
        for match in HEADING.finditer(doc_path.read_text(encoding="utf-8"))
    }


def check(root: Path = REPO_ROOT) -> list[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems: list[str] = []
    sections_by_doc: dict[str, set[int] | None] = {}
    for source in sorted((root / "src").rglob("*.py")):
        text = source.read_text(encoding="utf-8")
        for match in CITATION.finditer(text):
            doc_name = f"{match.group('doc')}.md"
            line = text.count("\n", 0, match.start()) + 1
            where = f"{source.relative_to(root)}:{line}"
            if doc_name not in sections_by_doc:
                doc_path = root / doc_name
                sections_by_doc[doc_name] = (
                    doc_sections(doc_path) if doc_path.is_file() else None
                )
            sections = sections_by_doc[doc_name]
            if sections is None:
                problems.append(f"{where}: cites missing file {doc_name}")
                continue
            if match.group("first") is None:
                continue
            first = int(match.group("first"))
            last = int(match.group("last") or first)
            for number in range(first, last + 1):
                if number not in sections:
                    problems.append(
                        f"{where}: cites {doc_name} section {number}, "
                        f"which has no such numbered heading "
                        f"(found: {sorted(sections)})"
                    )
    return problems


def main() -> int:
    problems = check()
    if problems:
        print(f"{len(problems)} dangling documentation reference(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("all documentation citations in src/ resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
