"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517
editable installs fail with "invalid command 'bdist_wheel'".  This
shim enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
