"""Package metadata and setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517
editable installs fail with "invalid command 'bdist_wheel'".  This
shim enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from pathlib import Path

from setuptools import find_packages, setup

README = Path(__file__).parent / "README.md"

setup(
    name="repro-cjoin",
    version="1.0.0",
    description=(
        "Reproduction of 'A Scalable, Predictable Join Operator for "
        "Highly Concurrent Data Warehouses' (VLDB 2009): the CJOIN "
        "shared star-join operator"
    ),
    long_description=README.read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
)
